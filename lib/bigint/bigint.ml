(* Arbitrary-precision signed integers on 26-bit limbs.

   Magnitudes are little-endian [int array]s whose entries lie in
   [0, 2^26); the top limb of a normalized magnitude is nonzero.  26-bit
   limbs keep every intermediate product (52 bits) and limb-sum far below
   the 63-bit native-int range, so no boxed arithmetic is ever needed. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = { neg : bool; mag : int array }
(* invariant: normalized; zero is { neg = false; mag = [||] } *)

let zero = { neg = false; mag = [||] }

let normalize neg mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { neg; mag }
  else { neg; mag = Array.sub mag 0 !n }

let of_limbs ~neg limbs = normalize neg (Array.copy limbs)
let to_limbs x = Array.copy x.mag
let is_zero x = Array.length x.mag = 0
let sign x = if is_zero x then 0 else if x.neg then -1 else 1

let of_int n =
  if n = 0 then zero
  else begin
    let neg = n < 0 in
    (* abs min_int overflows; peel limbs with logical ops on the raw value *)
    let rec limbs acc v = if v = 0 then List.rev acc else limbs ((v land mask) :: acc) (v lsr limb_bits) in
    let v = if neg then -n else n in
    if v > 0 then { neg; mag = Array.of_list (limbs [] v) }
    else
      (* n = min_int: build from its bit pattern *)
      let v = n lxor min_int in
      let m = Array.of_list (limbs [] v) in
      let m = Array.append m (Array.make (3 - Array.length m) 0) in
      (* set bit 62 *)
      m.(62 / limb_bits) <- m.(62 / limb_bits) lor (1 lsl (62 mod limb_bits));
      normalize true m
  end

let one = of_int 1
let two = of_int 2

let to_int_opt x =
  let n = Array.length x.mag in
  if n = 0 then Some 0
  else if n > 3 then None
  else begin
    (* accumulate negatively: the int range is asymmetric and the negative
       side holds one more magnitude (min_int = -2^62) *)
    let v = ref 0 in
    let ok = ref true in
    for i = n - 1 downto 0 do
      (* need v*2^26 - limb >= min_int, i.e. v >= ceil((min_int + limb) / 2^26) *)
      let m = min_int + x.mag.(i) in
      let bound = (m asr limb_bits) + (if m land mask <> 0 then 1 else 0) in
      if !v < bound then ok := false else v := (!v lsl limb_bits) - x.mag.(i)
    done;
    if not !ok then None
    else if x.neg then Some !v
    else if !v = min_int then None
    else Some (- !v)
  end

let to_int x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Bigint.to_int: overflow"

(* --- magnitude primitives --- *)

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r

(* requires |a| >= |b| *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land mask;
          carry := s lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr limb_bits;
          incr k
        done
      end
    done;
    r
  end

(* --- signed ops --- *)

let neg x = if is_zero x then x else { x with neg = not x.neg }
let abs x = if x.neg then { x with neg = false } else x

let add x y =
  if is_zero x then y
  else if is_zero y then x
  else if x.neg = y.neg then normalize x.neg (mag_add x.mag y.mag)
  else begin
    let c = mag_compare x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then normalize x.neg (mag_sub x.mag y.mag)
    else normalize y.neg (mag_sub y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul x y =
  if is_zero x || is_zero y then zero
  else normalize (x.neg <> y.neg) (mag_mul x.mag y.mag)

let compare x y =
  match (sign x, sign y) with
  | sx, sy when sx <> sy -> Stdlib.compare sx sy
  | 0, _ -> 0
  | 1, _ -> mag_compare x.mag y.mag
  | _ -> mag_compare y.mag x.mag

let equal x y = compare x y = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* --- bit operations --- *)

let bit_length x =
  let n = Array.length x.mag in
  if n = 0 then 0
  else begin
    let top = x.mag.(n - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((n - 1) * limb_bits) + width 0 top
  end

let testbit x i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length x.mag && (x.mag.(limb) lsr off) land 1 = 1

let to_digits ~bits ~count x =
  if bits < 1 || bits > 30 then invalid_arg "Bigint.to_digits: bits must be in [1, 30]";
  if count < 0 then invalid_arg "Bigint.to_digits: negative count";
  let out = Array.make count 0 in
  let mag = x.mag in
  let nl = Array.length mag in
  let dmask = (1 lsl bits) - 1 in
  (* little-endian bit buffer: limbs are drained 26 bits at a time, so
     [acc] never exceeds (bits - 1) + 26 <= 55 significant bits *)
  let acc = ref 0 and acc_bits = ref 0 and li = ref 0 in
  for i = 0 to count - 1 do
    while !acc_bits < bits && !li < nl do
      acc := !acc lor (mag.(!li) lsl !acc_bits);
      acc_bits := !acc_bits + limb_bits;
      incr li
    done;
    out.(i) <- !acc land dmask;
    acc := !acc lsr bits;
    acc_bits := if !acc_bits > bits then !acc_bits - bits else 0
  done;
  out

let shift_left x n =
  if is_zero x || n = 0 then x
  else begin
    let limbs = n / limb_bits and bits = n mod limb_bits in
    let la = Array.length x.mag in
    let r = Array.make (la + limbs + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (x.mag.(i) lsl bits) lor !carry in
      r.(i + limbs) <- v land mask;
      carry := v lsr limb_bits
    done;
    r.(la + limbs) <- !carry;
    normalize x.neg r
  end

let shift_right x n =
  if is_zero x || n = 0 then x
  else begin
    let limbs = n / limb_bits and bits = n mod limb_bits in
    let la = Array.length x.mag in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = x.mag.(i + limbs) lsr bits in
        let hi = if bits > 0 && i + limbs + 1 < la then (x.mag.(i + limbs + 1) lsl (limb_bits - bits)) land mask else 0 in
        r.(i) <- lo lor hi
      done;
      normalize x.neg r
    end
  end

(* --- division: Knuth algorithm D on 26-bit limbs --- *)

let mag_divmod_small a d =
  (* d in [1, base) *)
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

let mag_divmod u v =
  let lv = Array.length v in
  if lv = 0 then raise Division_by_zero;
  if mag_compare u v < 0 then ([||], Array.copy u)
  else if lv = 1 then begin
    let q, r = mag_divmod_small u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    (* normalize: shift so top limb of v has its high bit set *)
    let rec width w x = if x = 0 then w else width (w + 1) (x lsr 1) in
    let s = limb_bits - width 0 v.(lv - 1) in
    let un0 = (shift_left { neg = false; mag = u } s).mag in
    let vn = (shift_left { neg = false; mag = v } s).mag in
    let n = Array.length vn in
    let m = Array.length un0 - n in
    (* one spare top limb so un.(j + n) is always addressable *)
    let un = Array.make (Array.length un0 + 1) 0 in
    Array.blit un0 0 un 0 (Array.length un0);
    let q = Array.make (m + 1) 0 in
    let vtop = vn.(n - 1) and vsec = vn.(n - 2) in
    for j = m downto 0 do
      let top2 = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
      let qhat = ref (top2 / vtop) and rhat = ref (top2 mod vtop) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := top2 - (!qhat * vtop)
      end;
      let continue = ref true in
      while !continue && !rhat < base do
        if !qhat * vsec > (!rhat lsl limb_bits) lor un.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + vtop
        end
        else continue := false
      done;
      (* multiply-subtract *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * vn.(i) + !carry in
        carry := p lsr limb_bits;
        let d = un.(i + j) - (p land mask) - !borrow in
        if d < 0 then begin
          un.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          un.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = un.(j + n) - !carry - !borrow in
      if d < 0 then begin
        un.(j + n) <- d + base;
        (* add back *)
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s2 = un.(i + j) + vn.(i) + !c in
          un.(i + j) <- s2 land mask;
          c := s2 lsr limb_bits
        done;
        un.(j + n) <- (un.(j + n) + !c) land mask
      end
      else un.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize false (Array.sub un 0 n) in
    let r = shift_right r s in
    (q, r.mag)
  end

let divmod a b =
  if is_zero b then raise Division_by_zero;
  let qm, rm = mag_divmod a.mag b.mag in
  (normalize (a.neg <> b.neg) qm, normalize a.neg rm)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a b =
  let r = rem a b in
  if r.neg then add r (abs b) else r

(* --- modular arithmetic --- *)

let mod_pow b e m =
  if sign m <= 0 then invalid_arg "Bigint.mod_pow: modulus must be positive";
  if sign e < 0 then invalid_arg "Bigint.mod_pow: negative exponent";
  let b = erem b m in
  let result = ref (if equal m one then zero else one) in
  let acc = ref b in
  let nbits = bit_length e in
  for i = 0 to nbits - 1 do
    if testbit e i then result := erem (mul !result !acc) m;
    if i < nbits - 1 then acc := erem (mul !acc !acc) m
  done;
  !result

let rec gcd_aux a b = if is_zero b then a else gcd_aux b (rem a b)
let gcd a b = gcd_aux (abs a) (abs b)

let mod_inv a m =
  if sign m <= 0 then invalid_arg "Bigint.mod_inv: modulus must be positive";
  (* extended euclid on (a mod m, m) *)
  let a = erem a m in
  let rec go r0 r1 s0 s1 = if is_zero r1 then (r0, s0) else begin
    let q = div r0 r1 in
    go r1 (sub r0 (mul q r1)) s1 (sub s0 (mul q s1))
  end in
  let g, s = go a m one zero in
  if not (equal g one) then raise Not_found;
  erem s m

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n = if n = 0 then acc else go (if n land 1 = 1 then mul acc b else acc) (mul b b) (n lsr 1) in
  go one x n

(* --- string / byte conversions --- *)

let of_hex s =
  let s, negp = if String.length s > 0 && s.[0] = '-' then (String.sub s 1 (String.length s - 1), true) else (s, false) in
  let s = if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then String.sub s 2 (String.length s - 2) else s in
  if String.length s = 0 then invalid_arg "Bigint.of_hex: empty";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | '_' -> -1
    | _ -> invalid_arg "Bigint.of_hex: bad digit"
  in
  let acc = ref zero in
  String.iter
    (fun c ->
      let d = digit c in
      if d >= 0 then acc := add (shift_left !acc 4) (of_int d))
    s;
  if negp then neg !acc else !acc

let to_hex x =
  if is_zero x then "0"
  else begin
    let buf = Buffer.create 32 in
    let nibbles = (bit_length x + 3) / 4 in
    let started = ref false in
    for i = nibbles - 1 downto 0 do
      let limb = (i * 4) / limb_bits and off = (i * 4) mod limb_bits in
      let v =
        let lo = x.mag.(limb) lsr off in
        let hi = if off > limb_bits - 4 && limb + 1 < Array.length x.mag then x.mag.(limb + 1) lsl (limb_bits - off) else 0 in
        (lo lor hi) land 0xf
      in
      if v <> 0 || !started || i = 0 then begin
        started := true;
        Buffer.add_char buf "0123456789abcdef".[v]
      end
    done;
    (if x.neg then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let s, negp = if String.length s > 0 && s.[0] = '-' then (String.sub s 1 (String.length s - 1), true) else (s, false) in
  if String.length s = 0 then invalid_arg "Bigint.of_string: empty";
  let ten = of_int 10 in
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "Bigint.of_string: bad digit")
    s;
  if negp then neg !acc else !acc

let to_string x =
  if is_zero x then "0"
  else begin
    (* peel 7 decimal digits at a time via division by 10^7 *)
    let chunk = 10_000_000 in
    let rec go acc mag =
      if Array.length mag = 0 then acc
      else begin
        let q, r = mag_divmod_small mag chunk in
        let q = (normalize false q).mag in
        if Array.length q = 0 then string_of_int r :: acc
        else go (Printf.sprintf "%07d" r :: acc) q
      end
    in
    (if x.neg then "-" else "") ^ String.concat "" (go [] x.mag)
  end

let of_bytes_le b =
  let n = Bytes.length b in
  let limbs = Array.make ((n * 8 / limb_bits) + 1) 0 in
  for i = 0 to n - 1 do
    let v = Char.code (Bytes.get b i) in
    let bitpos = i * 8 in
    let limb = bitpos / limb_bits and off = bitpos mod limb_bits in
    limbs.(limb) <- limbs.(limb) lor ((v lsl off) land mask);
    if off > limb_bits - 8 then limbs.(limb + 1) <- limbs.(limb + 1) lor (v lsr (limb_bits - off))
  done;
  normalize false limbs

let to_bytes_le ~len x =
  if x.neg then invalid_arg "Bigint.to_bytes_le: negative";
  if bit_length x > len * 8 then invalid_arg "Bigint.to_bytes_le: does not fit";
  let b = Bytes.make len '\000' in
  for i = 0 to len - 1 do
    let bitpos = i * 8 in
    let limb = bitpos / limb_bits and off = bitpos mod limb_bits in
    if limb < Array.length x.mag then begin
      let lo = x.mag.(limb) lsr off in
      let hi = if off > limb_bits - 8 && limb + 1 < Array.length x.mag then x.mag.(limb + 1) lsl (limb_bits - off) else 0 in
      Bytes.set b i (Char.chr ((lo lor hi) land 0xff))
    end
  done;
  b

let random ~bits rand26 =
  if bits <= 0 then zero
  else begin
    let nlimbs = (bits + limb_bits - 1) / limb_bits in
    let limbs = Array.init nlimbs (fun _ -> rand26 () land mask) in
    let top_bits = bits - ((nlimbs - 1) * limb_bits) in
    limbs.(nlimbs - 1) <- limbs.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    normalize false limbs
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)
