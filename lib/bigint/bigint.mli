(** Arbitrary-precision signed integers.

    This module is the numeric bedrock of the repository: the offline switch
    has no [zarith], so curve constants, Barrett parameters, serialization
    and the reference implementations used to cross-check the fixed-width
    field arithmetic are all built on it.

    Representation: sign-magnitude with little-endian arrays of 26-bit limbs,
    always normalized (no leading zero limbs; zero has an empty magnitude and
    positive sign). All operations are purely functional. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t

(** {1 Conversions} *)

(** [of_int n] converts a native integer (full 63-bit range supported). *)
val of_int : int -> t

(** [to_int x] converts back to a native integer.
    @raise Failure if the value does not fit in a native [int]. *)
val to_int : t -> int

(** [to_int_opt x] is [Some (to_int x)] when the value fits, else [None]. *)
val to_int_opt : t -> int option

(** [of_hex s] parses a hexadecimal string, optionally prefixed by ["-"]
    and/or ["0x"]. @raise Invalid_argument on malformed input. *)
val of_hex : string -> t

(** [to_hex x] renders the value in lowercase hexadecimal (["-"]-prefixed
    when negative, no ["0x"]). *)
val to_hex : t -> string

(** [of_string s] parses a decimal string, optionally ["-"]-prefixed.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** [to_string x] renders the value in decimal. *)
val to_string : t -> string

(** [of_bytes_le b] interprets [b] as an unsigned little-endian integer. *)
val of_bytes_le : Bytes.t -> t

(** [to_bytes_le ~len x] is the unsigned little-endian encoding of [x],
    zero-padded to [len] bytes.
    @raise Invalid_argument if [x] is negative or does not fit in [len]. *)
val to_bytes_le : len:int -> t -> Bytes.t

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

(** [min a b] / [max a b] with respect to {!compare}. *)
val min : t -> t -> t

val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|], and [r]
    carrying the sign of [a] (truncated division, like OCaml's [/] and
    [mod]). @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [erem a b] is the non-negative euclidean remainder: [0 <= erem a b < |b|]. *)
val erem : t -> t -> t

(** {1 Bit operations} *)

(** [shift_left x n] is [x * 2^n]. [n >= 0]. *)
val shift_left : t -> int -> t

(** [shift_right x n] is [x / 2^n] rounded toward zero for the magnitude
    (arithmetic on the magnitude, sign preserved). [n >= 0]. *)
val shift_right : t -> int -> t

(** [bit_length x] is the position of the highest set bit of [|x|]
    (0 for zero). *)
val bit_length : t -> int

(** [testbit x i] is bit [i] of the magnitude of [x]. *)
val testbit : t -> int -> bool

(** [to_digits ~bits ~count x] extracts the first [count] little-endian
    [bits]-wide digits of the magnitude of [x] in one pass over the limbs
    (missing high digits are 0). This is the shared digit decomposition
    of every windowed scalar multiplication: one call replaces
    [bits * count] {!testbit} probes. [1 <= bits <= 30]. *)
val to_digits : bits:int -> count:int -> t -> int array

(** {1 Modular arithmetic} *)

(** [mod_pow base exp m] is [base^exp mod m] for [exp >= 0], [m > 0];
    result in [0, m). *)
val mod_pow : t -> t -> t -> t

(** [mod_inv a m] is the inverse of [a] modulo [m] ([m > 0]).
    @raise Not_found if [gcd a m <> 1]. *)
val mod_inv : t -> t -> t

val gcd : t -> t -> t

(** {1 Misc} *)

(** [pow x n] is [x^n] for small non-negative [n]. *)
val pow : t -> int -> t

(** [random ~bits rand26] draws a uniform value in [0, 2^bits) using
    [rand26 ()], a supplier of uniform 26-bit integers. *)
val random : bits:int -> (unit -> int) -> t

val pp : Format.formatter -> t -> unit

(** {1 Internal access (used by fixed-width field code and tests)} *)

(** [to_limbs x] exposes the little-endian 26-bit magnitude limbs. *)
val to_limbs : t -> int array

(** [of_limbs ~neg limbs] builds a value from 26-bit limbs (copied,
    normalized). *)
val of_limbs : neg:bool -> int array -> t

(** Number of bits per limb (26). *)
val limb_bits : int
