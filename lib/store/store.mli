(** Durable append-only storage: the write-ahead log under the round
    runtime.

    A {!Wal.t} is a CRC-framed record log. Each record is
    [u32 len ‖ u32 crc ‖ u8 tag ‖ payload] (little-endian), where [len]
    covers tag byte + payload and [crc] is the CRC-32 of the same bytes.
    Appends are written in one [write] call and optionally [fsync]ed, so
    a crash can lose or tear at most the final record; {!Wal.replay}
    stops cleanly at the first incomplete or corrupt frame and reports
    how far the intact prefix reached. Nothing in here knows about the
    protocol — typed records live in [Risefl_core.Round_log]. *)

(** CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Exposed so the
    transport framing can checksum payloads with the same primitive. *)
module Crc32 : sig
  val digest : Bytes.t -> int
  (** CRC-32 of the whole buffer, in [0, 0xFFFFFFFF]. *)

  val digest_sub : Bytes.t -> pos:int -> len:int -> int
  (** CRC-32 of [len] bytes starting at [pos]. *)
end

module Wal : sig
  type t

  val open_ : ?fsync:bool -> string -> t
  (** [open_ ?fsync path] — open (creating if needed) the log at [path]
      for appending. With [fsync] (default [true]) every {!append} is
      followed by an [fsync(2)], the durability the recovery invariant
      assumes; [fsync:false] trades that for speed in benchmarks. *)

  val path : t -> string

  val append : t -> tag:int -> Bytes.t -> unit
  (** Append one record ([tag] in [0, 255]). The frame is assembled in
      memory and handed to the kernel in a single write. *)

  val sync : t -> unit
  (** Force an [fsync(2)] now (a no-op freshness-wise if every append
      already synced). *)

  val close : t -> unit

  (** How replay ended: the log was intact to the end, or an incomplete /
      corrupt tail was found at [offset] (everything before it is good —
      the expected state after a crash mid-append). *)
  type replay_status = Complete | Torn of { offset : int; reason : string }

  val replay : string -> (int * int * Bytes.t) list * replay_status
  (** [replay path] — decode the intact prefix of the log into
      [(offset, tag, payload)] records, in append order. A missing file
      replays as ([[]], [Complete]). Never raises on corrupt bytes: a bad
      length, a CRC mismatch or a truncated frame terminates the scan
      with [Torn]. *)
end

(** Keyed blob cache for expensive precomputed artifacts (BSGS baby
    tables, fixed-base point tables). One file per key, CRC-framed with
    the key embedded, written atomically (temp + rename). The cache is
    strictly best-effort: corruption, truncation, version or key
    mismatches all read as a miss and the caller rebuilds — a bad cache
    file can cost time but never wrong results. *)
module Cache : sig
  type t

  val open_ : dir:string -> t
  (** Open (creating recursively if needed) a cache directory. *)

  val dir : t -> string

  val load : t -> key:string -> Bytes.t option
  (** [None] on a missing, truncated, corrupt or mismatched entry —
      never raises, never returns partial data. *)

  val save : t -> key:string -> Bytes.t -> unit
  (** Store [key -> payload], atomically replacing any previous entry. *)
end
