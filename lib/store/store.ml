module Crc32 = struct
  (* IEEE 802.3 / zlib polynomial, reflected: 0xEDB88320 *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let digest_sub buf ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length buf then invalid_arg "Crc32.digest_sub";
    let tbl = Lazy.force table in
    let c = ref 0xFFFFFFFF in
    for i = pos to pos + len - 1 do
      c := tbl.((!c lxor Char.code (Bytes.get buf i)) land 0xff) lxor (!c lsr 8)
    done;
    !c lxor 0xFFFFFFFF

  let digest buf = digest_sub buf ~pos:0 ~len:(Bytes.length buf)
end

module Wal = struct
  (* record frame: u32 len | u32 crc | u8 tag | payload
     len = 1 + |payload| (tag byte + payload), crc = CRC-32 of those bytes;
     u32s little-endian, matching the Serial wire convention *)
  let header_size = 8

  type t = { fd : Unix.file_descr; w_path : string; do_fsync : bool; mutable closed : bool }

  let c_appends = Telemetry.Counter.make "wal.appends"
  let c_bytes = Telemetry.Counter.make "wal.bytes"
  let c_fsyncs = Telemetry.Counter.make "wal.fsyncs"
  let c_torn = Telemetry.Counter.make "wal.torn"

  let open_ ?(fsync = true) path =
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
    { fd; w_path = path; do_fsync = fsync; closed = false }

  let path t = t.w_path

  let put_u32 buf off v =
    for i = 0 to 3 do
      Bytes.set buf (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
    done

  let get_u32 buf off =
    let v = ref 0 in
    for i = 3 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get buf (off + i))
    done;
    !v

  let sync t =
    if not t.closed then begin
      Unix.fsync t.fd;
      Telemetry.Counter.incr c_fsyncs
    end

  let append t ~tag payload =
    if t.closed then invalid_arg "Wal.append: closed";
    if tag < 0 || tag > 0xff then invalid_arg "Wal.append: tag out of range";
    let len = 1 + Bytes.length payload in
    let frame = Bytes.create (header_size + len) in
    put_u32 frame 0 len;
    Bytes.set frame header_size (Char.chr tag);
    Bytes.blit payload 0 frame (header_size + 1) (Bytes.length payload);
    put_u32 frame 4 (Crc32.digest_sub frame ~pos:header_size ~len);
    let n = Unix.write t.fd frame 0 (Bytes.length frame) in
    if n <> Bytes.length frame then failwith "Wal.append: short write";
    Telemetry.Counter.incr c_appends;
    Telemetry.Counter.add c_bytes (Bytes.length frame);
    if t.do_fsync then sync t

  let close t =
    if not t.closed then begin
      t.closed <- true;
      Unix.close t.fd
    end

  type replay_status = Complete | Torn of { offset : int; reason : string }

  let read_file path =
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
    | fd ->
        let size = (Unix.fstat fd).Unix.st_size in
        let buf = Bytes.create size in
        let rec fill off =
          if off < size then begin
            let n = Unix.read fd buf off (size - off) in
            if n = 0 then failwith "Wal.replay: unexpected EOF";
            fill (off + n)
          end
        in
        fill 0;
        Unix.close fd;
        Some buf

  let replay path =
    match read_file path with
    | None -> ([], Complete)
    | Some buf ->
        let size = Bytes.length buf in
        let out = ref [] in
        let torn off reason =
          Telemetry.Counter.incr c_torn;
          (List.rev !out, Torn { offset = off; reason })
        in
        let rec scan off =
          if off = size then (List.rev !out, Complete)
          else if size - off < header_size then torn off "truncated record header"
          else begin
            let len = get_u32 buf off in
            let crc = get_u32 buf (off + 4) in
            if len < 1 then torn off "bad record length"
            else if len > size - off - header_size then torn off "truncated record body"
            else if Crc32.digest_sub buf ~pos:(off + header_size) ~len <> crc then
              torn off "CRC mismatch"
            else begin
              let tag = Char.code (Bytes.get buf (off + header_size)) in
              let payload = Bytes.sub buf (off + header_size + 1) (len - 1) in
              out := (off, tag, payload) :: !out;
              scan (off + header_size + len)
            end
          end
        in
        scan 0
end

module Cache = struct
  (* keyed blob store for precomputed group tables: one file per key,
     format "RFLC1" | u32 crc | u32 keylen | key | payload (u32s
     little-endian, crc = CRC-32 of keylen|key|payload).  Corruption of
     any kind — wrong magic, bad lengths, CRC mismatch, key collision in
     the filename hash — loads as None, and the caller rebuilds. *)

  type t = { dir : string }

  let magic = "RFLC1"
  let magic_len = 5

  let c_hits = Telemetry.Counter.make "store.cache.hits"
  let c_misses = Telemetry.Counter.make "store.cache.misses"
  let c_writes = Telemetry.Counter.make "store.cache.writes"

  let rec mkdir_p dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let open_ ~dir =
    mkdir_p dir;
    { dir }

  let dir t = t.dir

  (* filename = readable sanitized key prefix + crc of the full key, so
     distinct keys practically never share a file and a collision is
     caught by the embedded key check anyway *)
  let filename t key =
    let sane =
      String.map (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c | _ -> '-')
        key
    in
    let sane = if String.length sane > 80 then String.sub sane 0 80 else sane in
    Filename.concat t.dir
      (Printf.sprintf "%s-%08x.cache" sane (Crc32.digest (Bytes.of_string key)))

  let put_u32 = Wal.put_u32
  let get_u32 = Wal.get_u32

  let load t ~key =
    match Wal.read_file (filename t key) with
    | None | (exception _) ->
        Telemetry.Counter.incr c_misses;
        None
    | Some buf ->
        let klen = String.length key in
        let header = magic_len + 8 in
        let ok =
          Bytes.length buf >= header + klen
          && String.equal (Bytes.sub_string buf 0 magic_len) magic
          && get_u32 buf (magic_len + 4) = klen
          && String.equal (Bytes.sub_string buf (header) klen) key
          && get_u32 buf magic_len
             = Crc32.digest_sub buf ~pos:(magic_len + 4) ~len:(Bytes.length buf - magic_len - 4)
        in
        if ok then begin
          Telemetry.Counter.incr c_hits;
          Some (Bytes.sub buf (header + klen) (Bytes.length buf - header - klen))
        end
        else begin
          Telemetry.Counter.incr c_misses;
          None
        end

  let save t ~key payload =
    let klen = String.length key in
    let buf = Bytes.create (magic_len + 8 + klen + Bytes.length payload) in
    Bytes.blit_string magic 0 buf 0 magic_len;
    put_u32 buf (magic_len + 4) klen;
    Bytes.blit_string key 0 buf (magic_len + 8) klen;
    Bytes.blit payload 0 buf (magic_len + 8 + klen) (Bytes.length payload);
    put_u32 buf magic_len
      (Crc32.digest_sub buf ~pos:(magic_len + 4) ~len:(Bytes.length buf - magic_len - 4));
    (* temp + rename: readers never observe a half-written file *)
    let final = filename t key in
    let tmp = final ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let n = Unix.write fd buf 0 (Bytes.length buf) in
    Unix.close fd;
    if n <> Bytes.length buf then (try Sys.remove tmp with _ -> ())
    else begin
      Unix.rename tmp final;
      Telemetry.Counter.incr c_writes
    end
end
