module Crc32 = struct
  (* IEEE 802.3 / zlib polynomial, reflected: 0xEDB88320 *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let digest_sub buf ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length buf then invalid_arg "Crc32.digest_sub";
    let tbl = Lazy.force table in
    let c = ref 0xFFFFFFFF in
    for i = pos to pos + len - 1 do
      c := tbl.((!c lxor Char.code (Bytes.get buf i)) land 0xff) lxor (!c lsr 8)
    done;
    !c lxor 0xFFFFFFFF

  let digest buf = digest_sub buf ~pos:0 ~len:(Bytes.length buf)
end

module Wal = struct
  (* record frame: u32 len | u32 crc | u8 tag | payload
     len = 1 + |payload| (tag byte + payload), crc = CRC-32 of those bytes;
     u32s little-endian, matching the Serial wire convention *)
  let header_size = 8

  type t = { fd : Unix.file_descr; w_path : string; do_fsync : bool; mutable closed : bool }

  let c_appends = Telemetry.Counter.make "wal.appends"
  let c_bytes = Telemetry.Counter.make "wal.bytes"
  let c_fsyncs = Telemetry.Counter.make "wal.fsyncs"
  let c_torn = Telemetry.Counter.make "wal.torn"

  let open_ ?(fsync = true) path =
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
    { fd; w_path = path; do_fsync = fsync; closed = false }

  let path t = t.w_path

  let put_u32 buf off v =
    for i = 0 to 3 do
      Bytes.set buf (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
    done

  let get_u32 buf off =
    let v = ref 0 in
    for i = 3 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get buf (off + i))
    done;
    !v

  let sync t =
    if not t.closed then begin
      Unix.fsync t.fd;
      Telemetry.Counter.incr c_fsyncs
    end

  let append t ~tag payload =
    if t.closed then invalid_arg "Wal.append: closed";
    if tag < 0 || tag > 0xff then invalid_arg "Wal.append: tag out of range";
    let len = 1 + Bytes.length payload in
    let frame = Bytes.create (header_size + len) in
    put_u32 frame 0 len;
    Bytes.set frame header_size (Char.chr tag);
    Bytes.blit payload 0 frame (header_size + 1) (Bytes.length payload);
    put_u32 frame 4 (Crc32.digest_sub frame ~pos:header_size ~len);
    let n = Unix.write t.fd frame 0 (Bytes.length frame) in
    if n <> Bytes.length frame then failwith "Wal.append: short write";
    Telemetry.Counter.incr c_appends;
    Telemetry.Counter.add c_bytes (Bytes.length frame);
    if t.do_fsync then sync t

  let close t =
    if not t.closed then begin
      t.closed <- true;
      Unix.close t.fd
    end

  type replay_status = Complete | Torn of { offset : int; reason : string }

  let read_file path =
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
    | fd ->
        let size = (Unix.fstat fd).Unix.st_size in
        let buf = Bytes.create size in
        let rec fill off =
          if off < size then begin
            let n = Unix.read fd buf off (size - off) in
            if n = 0 then failwith "Wal.replay: unexpected EOF";
            fill (off + n)
          end
        in
        fill 0;
        Unix.close fd;
        Some buf

  let replay path =
    match read_file path with
    | None -> ([], Complete)
    | Some buf ->
        let size = Bytes.length buf in
        let out = ref [] in
        let torn off reason =
          Telemetry.Counter.incr c_torn;
          (List.rev !out, Torn { offset = off; reason })
        in
        let rec scan off =
          if off = size then (List.rev !out, Complete)
          else if size - off < header_size then torn off "truncated record header"
          else begin
            let len = get_u32 buf off in
            let crc = get_u32 buf (off + 4) in
            if len < 1 then torn off "bad record length"
            else if len > size - off - header_size then torn off "truncated record body"
            else if Crc32.digest_sub buf ~pos:(off + header_size) ~len <> crc then
              torn off "CRC mismatch"
            else begin
              let tag = Char.code (Bytes.get buf (off + header_size)) in
              let payload = Bytes.sub buf (off + header_size + 1) (len - 1) in
              out := (off, tag, payload) :: !out;
              scan (off + header_size + len)
            end
          end
        in
        scan 0
end
