(** Pairwise-mask secure aggregation (Bonawitz et al. / Bell et al.,
    "PRG-SecAgg"): every ordered pair (i, j) shares a PRG key; client i
    adds PRG(key) to its vector if i < j and subtracts it if i > j, so
    the masks cancel in the server's sum. Used by the ACORN baseline for
    the updates themselves and by the RoFL baseline for blind vectors.

    This implementation omits the dropout-recovery machinery of the full
    protocol (no dropouts occur in the benchmarked path). *)

module Scalar = Curve25519.Scalar

(** [mask_scalars ~keys ~self ?active ~label v] — [keys.(j-1)] is the
    symmetric key shared with client j ([self]'s own entry is ignored);
    when [active] is given, pairs with inactive clients are skipped (all
    active parties must agree on [active] for the masks to cancel). Adds
    the signed pairwise masks to each coordinate of [v]. *)
val mask_scalars :
  keys:Bytes.t array -> self:int -> ?active:bool array -> label:string -> Scalar.t array -> Scalar.t array

(** [unmask_sum vs] — sums masked vectors from {e all} clients; pairwise
    masks cancel, leaving Σᵢ vᵢ. *)
val unmask_sum : Scalar.t array array -> Scalar.t array

(** Same construction over the ring ℤ_{2^32} for integer vectors (the
    ACORN update path). Values are reduced mod 2^32; the true sum is
    recovered if it fits in (−2^31, 2^31). *)
val mask_ints :
  keys:Bytes.t array -> self:int -> ?active:bool array -> label:string -> int array -> int array

(** Sum of all masked integer vectors, mapped back to signed ints. *)
val unmask_sum_ints : int array array -> int array
