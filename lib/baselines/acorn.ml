module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Pedersen = Commitments.Pedersen
module Sigma = Zkp.Sigma
module Transcript = Zkp.Transcript
module B = Bigint

type setup = { d : int; bits : int; key : Pedersen.key }

let create_setup ~label ~d ~bits =
  let g = Curve25519.Gens.derive (label ^ "/acorn/g") in
  let h = Curve25519.Gens.derive (label ^ "/acorn/h") in
  { d; bits; key = Pedersen.make_key ~g ~h }

(* A committed proof that some committed value is >= 0, via Lagrange:
   value = w1^2 + w2^2 + w3^2 + w4^2.  The prover commits each w_j and
   its square, proves the squares, and opens the blind of
   target / prod(w-square commitments) with a Schnorr proof on base h. *)
type nonneg_proof = {
  ws : Point.t array;  (* commitments to w_j, length 4 *)
  w2s : Point.t array;  (* commitments to w_j^2 *)
  sqs : Sigma.Square.proof array;
  opening : Sigma.Schnorr.proof;
}

let prove_nonneg drbg tr key ~value ~target_blind =
  (* [target_blind] is the blind of the commitment C = g^{value} h^{blind}
     the verifier will check against *)
  let g = key.Pedersen.g and h = key.Pedersen.h in
  let w1, w2, w3, w4 = Foursquare.decompose drbg value in
  let quad = [| w1; w2; w3; w4 |] in
  let blinds = Array.init 4 (fun _ -> Scalar.random drbg) in
  let blinds2 = Array.init 4 (fun _ -> Scalar.random drbg) in
  let ws = Array.init 4 (fun j -> Pedersen.commit key ~value:(Scalar.of_bigint quad.(j)) ~blind:blinds.(j)) in
  let w2s =
    Array.init 4 (fun j ->
        Pedersen.commit key ~value:(Scalar.of_bigint (B.mul quad.(j) quad.(j))) ~blind:blinds2.(j))
  in
  Transcript.append_points tr ~label:"nn/ws" ws;
  Transcript.append_points tr ~label:"nn/w2s" w2s;
  let sqs =
    Array.init 4 (fun j ->
        Sigma.Square.prove drbg tr ~g ~q:h ~y1:ws.(j) ~y2:w2s.(j) ~x:(Scalar.of_bigint quad.(j))
          ~s:blinds.(j) ~s':blinds2.(j))
  in
  (* target = prod w2s * h^delta with delta = target_blind - sum blinds2 *)
  let delta = Scalar.sub target_blind (Array.fold_left Scalar.add Scalar.zero blinds2) in
  let c = Point.Table.mul key.Pedersen.h_table delta in
  let opening = Sigma.Schnorr.prove drbg tr ~g:h ~c ~x:delta in
  { ws; w2s; sqs; opening }

let verify_nonneg tr key ~target (p : nonneg_proof) =
  let g = key.Pedersen.g and h = key.Pedersen.h in
  Array.length p.ws = 4
  && Array.length p.w2s = 4
  && Array.length p.sqs = 4
  && begin
       Transcript.append_points tr ~label:"nn/ws" p.ws;
       Transcript.append_points tr ~label:"nn/w2s" p.w2s;
       let ok = ref true in
       Array.iteri
         (fun j sq -> if !ok then ok := Sigma.Square.verify tr ~g ~q:h ~y1:p.ws.(j) ~y2:p.w2s.(j) sq)
         p.sqs;
       !ok
     end
  &&
  (* residual = target / prod w2s must be h^delta for a known delta *)
  let residual = Point.sub target (Array.fold_left Point.add Point.identity p.w2s) in
  Sigma.Schnorr.verify tr ~g:h ~c:residual p.opening

let nonneg_size p =
  (32 * (Array.length p.ws + Array.length p.w2s))
  + Array.fold_left (fun acc s -> acc + Sigma.Square.size_bytes s) 0 p.sqs
  + Sigma.Schnorr.size_bytes p.opening

type client_msg = {
  cs : Point.t array;  (* g^{u_l} h^{r_l} *)
  c2s : Point.t array;  (* g^{u_l^2} h^{r2_l} *)
  squares : Sigma.Square.proof array;
  coord_guards : nonneg_proof array;  (* 2^{2(bits-1)} - u_l^2 >= 0 *)
  bound_proof : nonneg_proof;  (* B^2 - sum u^2 >= 0 *)
  masked_update : int array;  (* PRG-SecAgg payload *)
}

let make_transcript ~seed ~client =
  let tr = Transcript.create "acorn/proof/v1" in
  Transcript.append_bytes tr ~label:"seed" (Bytes.of_string seed);
  Transcript.append_int tr ~label:"client" client;
  tr

let bi = B.of_int

let client_round setup drbg ~seed ~id ~u ~bound_b ~keys ~active =
  let d = setup.d in
  let g = setup.key.Pedersen.g and h = setup.key.Pedersen.h in
  let (cs, c2s, rs, r2s, masked_update), commit_s =
    Types.time (fun () ->
        let rs = Array.init d (fun _ -> Scalar.random drbg) in
        let r2s = Array.init d (fun _ -> Scalar.random drbg) in
        let cs = Array.init d (fun l -> Pedersen.commit_small setup.key ~value:u.(l) ~blind:rs.(l)) in
        let c2s =
          Array.init d (fun l ->
              Pedersen.commit setup.key ~value:(Scalar.of_bigint (B.mul (bi u.(l)) (bi u.(l))))
                ~blind:r2s.(l))
        in
        let masked_update = Secagg_mask.mask_ints ~keys ~self:id ~active ~label:seed u in
        (cs, c2s, rs, r2s, masked_update))
  in
  let msg, proof_s =
    Types.time (fun () ->
        let tr = make_transcript ~seed ~client:id in
        Transcript.append_points tr ~label:"acorn/c" cs;
        Transcript.append_points tr ~label:"acorn/c2" c2s;
        let squares =
          Array.init d (fun l ->
              Sigma.Square.prove drbg tr ~g ~q:h ~y1:cs.(l) ~y2:c2s.(l) ~x:(Scalar.of_int u.(l))
                ~s:rs.(l) ~s':r2s.(l))
        in
        let m2 = B.shift_left B.one (2 * (setup.bits - 1)) in
        let coord_guards =
          Array.init d (fun l ->
              let value = B.sub m2 (B.mul (bi u.(l)) (bi u.(l))) in
              let value = if B.sign value < 0 then B.zero else value in
              (* target = g^{M^2} / c2_l, blind = -r2_l *)
              prove_nonneg drbg tr setup.key ~value ~target_blind:(Scalar.neg r2s.(l)))
        in
        let b2 = Risefl_core.Params.bigint_of_float_ceil (bound_b *. bound_b) in
        let sum_sq = Array.fold_left (fun acc v -> B.add acc (B.mul (bi v) (bi v))) B.zero u in
        let slack = B.sub b2 sum_sq in
        let slack = if B.sign slack < 0 then B.zero else slack in
        let bound_proof =
          prove_nonneg drbg tr setup.key ~value:slack
            ~target_blind:(Scalar.neg (Array.fold_left Scalar.add Scalar.zero r2s))
        in
        { cs; c2s; squares; coord_guards; bound_proof; masked_update })
  in
  (msg, commit_s, proof_s)

let verify_client setup tr ~bound_b (m : client_msg) =
  let d = setup.d in
  let g = setup.key.Pedersen.g and h = setup.key.Pedersen.h in
  Array.length m.cs = d
  && Array.length m.c2s = d
  && Array.length m.squares = d
  && Array.length m.coord_guards = d
  && begin
       Transcript.append_points tr ~label:"acorn/c" m.cs;
       Transcript.append_points tr ~label:"acorn/c2" m.c2s;
       let ok = ref true in
       Array.iteri
         (fun l sq -> if !ok then ok := Sigma.Square.verify tr ~g ~q:h ~y1:m.cs.(l) ~y2:m.c2s.(l) sq)
         m.squares;
       !ok
     end
  && (let m2_pt =
        Point.Table.mul setup.key.Pedersen.g_table
          (Scalar.of_bigint (B.shift_left B.one (2 * (setup.bits - 1))))
      in
      let ok = ref true in
      Array.iteri
        (fun l guard ->
          if !ok then begin
            let target = Point.sub m2_pt m.c2s.(l) in
            ok := verify_nonneg tr setup.key ~target guard
          end)
        m.coord_guards;
      !ok)
  &&
  let b2 = Risefl_core.Params.bigint_of_float_ceil (bound_b *. bound_b) in
  let target =
    Point.sub
      (Point.Table.mul setup.key.Pedersen.g_table (Scalar.of_bigint b2))
      (Array.fold_left Point.add Point.identity m.c2s)
  in
  verify_nonneg tr setup.key ~target m.bound_proof

let msg_size (m : client_msg) =
  (32 * (Array.length m.cs + Array.length m.c2s))
  + Array.fold_left (fun acc s -> acc + Sigma.Square.size_bytes s) 0 m.squares
  + Array.fold_left (fun acc p -> acc + nonneg_size p) 0 m.coord_guards
  + nonneg_size m.bound_proof
  + (4 * Array.length m.masked_update)

let run setup ~updates ~bound_b ~cheat ~seed =
  ignore cheat;
  let n = Array.length updates in
  let root = Prng.Drbg.create_string seed in
  let pair_key i j =
    let lo = Stdlib.min i j and hi = Stdlib.max i j in
    Hashfn.Sha256.digest_string (Printf.sprintf "%s/acorn-pair/%d-%d" seed lo hi)
  in
  (* ACORN masks among all participating clients; verification happens on
     commitments, and a failed client's mask contribution is recovered in
     the real protocol. We make all clients participate in masking and
     subtract rejected clients' (now-revealed) updates from the sum. *)
  let active = Array.make n true in
  let commit_total = ref 0.0 and proof_total = ref 0.0 in
  let msgs =
    Array.init n (fun i ->
        let drbg = Prng.Drbg.fork root (Printf.sprintf "client%d" i) in
        let keys = Array.init n (fun j -> pair_key (i + 1) (j + 1)) in
        let msg, cs, ps =
          client_round setup drbg ~seed ~id:(i + 1) ~u:updates.(i) ~bound_b ~keys ~active
        in
        commit_total := !commit_total +. cs;
        proof_total := !proof_total +. ps;
        msg)
  in
  let accepted = Array.make n false in
  let (), verify_s =
    Types.time (fun () ->
        Array.iteri
          (fun i msg ->
            let tr = make_transcript ~seed ~client:(i + 1) in
            accepted.(i) <- verify_client setup tr ~bound_b msg)
          msgs)
  in
  let aggregate, agg_s =
    Types.time (fun () ->
        let sum = Secagg_mask.unmask_sum_ints (Array.map (fun m -> m.masked_update) msgs) in
        (* dropout-recovery surrogate: rejected clients' updates are
           reconstructed (here: known) and removed from the masked sum *)
        Array.iteri
          (fun i u -> if not accepted.(i) then Array.iteri (fun l v -> sum.(l) <- sum.(l) - v) u)
          updates;
        Some sum)
  in
  let comm = if n = 0 then 0 else msg_size msgs.(0) in
  {
    Types.timings =
      {
        Types.client_commit_s = !commit_total /. float_of_int (Stdlib.max 1 n);
        client_proof_gen_s = !proof_total /. float_of_int (Stdlib.max 1 n);
        client_proof_ver_s = 0.0;
        server_prep_s = 0.0;
        server_verify_s = verify_s;
        server_agg_s = agg_s;
        client_comm_bytes = comm;
      };
    accepted;
    aggregate;
  }
