(** The RoFL baseline (Lycklama et al., S&P 2023), strict-checking
    variant with the L2-norm predicate.

    Per coordinate the client publishes an ElGamal-style commitment pair
    (g^{u_l}·h^{r_l}, g^{r_l}) with an {e independent} blind r_l, proves
    well-formedness of every pair, proves each coordinate's range and the
    squares relation, and proves B² − Σ u_l² ≥ 0 — all {e exactly}
    (strict check), which is where the O(d·b) cost the paper reports
    comes from. No Byzantine-robust share recovery: aggregation uses
    pairwise-mask blind cancellation over the accepted set (simplified
    from RoFL's mask-based secure aggregation; same asymptotics). *)

type setup

(** [create_setup ~label ~d ~bits] — [bits] is the per-coordinate
    fixed-point width (power of two). *)
val create_setup : label:string -> d:int -> bits:int -> setup

(** [run setup ~updates ~bound_b ~cheat ~seed] — one full iteration.
    [cheat.(i)] makes client i submit an update violating the bound
    without adjusting its proofs (it will be rejected). [bound_b] is the
    L2 bound in encoded units. *)
val run :
  setup -> updates:int array array -> bound_b:float -> cheat:bool array -> seed:string -> Types.outcome
