module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Msm = Curve25519.Msm
module B = Bigint

type setup = {
  d : int;
  bits : int;
  n : int;
  m : int;
  g_table : Point.Table.table;
  h_table : Point.Table.table;
}

let create_setup ~label ~d ~bits ~n ~m =
  if 2 * m >= n then invalid_arg "Eiffel.create_setup: need m < n/2";
  let g = Curve25519.Gens.derive (label ^ "/eiffel/g") in
  let h = Curve25519.Gens.derive (label ^ "/eiffel/h") in
  { d; bits; n; m; g_table = Point.Table.make g; h_table = Point.Table.make h }

(* degree-deg polynomial with given constant term; returns evaluations at
   1..n plus the coefficient vector *)
let share_poly drbg ~deg ~n c0 =
  let coeffs = Array.init (deg + 1) (fun j -> if j = 0 then c0 else Scalar.random drbg) in
  let evals =
    Array.init n (fun i ->
        let x = i + 1 in
        let acc = ref Scalar.zero in
        for j = deg downto 0 do
          acc := Scalar.add (Scalar.mul_small !acc x) coeffs.(j)
        done;
        !acc)
  in
  (evals, coeffs)

type dealer_msg = {
  dealer : int;
  (* per verifier (outer, length n), per coordinate (inner, length d) *)
  coord_shares : Scalar.t array array;
  blind_shares : Scalar.t array array;
  (* per verifier, per coordinate*bit *)
  bit_shares : Scalar.t array array;
  (* per coordinate: Pedersen-VSSS string, length m+1 *)
  checks : Point.t array array;
}

(* deterministic SNIP coefficients shared by verifiers and server *)
let snip_coeffs ~seed ~dealer ~d ~bits =
  let drbg = Prng.Drbg.create_string (Printf.sprintf "%s/eiffel-snip/%d" seed dealer) in
  let betas = Array.init (d * bits) (fun _ -> Scalar.random drbg) in
  let lambdas = Array.init d (fun _ -> Scalar.random drbg) in
  (betas, lambdas)

let deal setup drbg ~u =
  let { d; bits; n; m; _ } = setup in
  let shift = 1 lsl (bits - 1) in
  let coord_shares = Array.init n (fun _ -> Array.make d Scalar.zero) in
  let blind_shares = Array.init n (fun _ -> Array.make d Scalar.zero) in
  let bit_shares = Array.init n (fun _ -> Array.make (d * bits) Scalar.zero) in
  let checks = Array.make d [||] in
  for l = 0 to d - 1 do
    let v_evals, v_coeffs = share_poly drbg ~deg:m ~n (Scalar.of_int u.(l)) in
    let b_evals, b_coeffs = share_poly drbg ~deg:m ~n (Scalar.random drbg) in
    for i = 0 to n - 1 do
      coord_shares.(i).(l) <- v_evals.(i);
      blind_shares.(i).(l) <- b_evals.(i)
    done;
    checks.(l) <-
      Array.init (m + 1) (fun j ->
          Point.add (Point.Table.mul setup.g_table v_coeffs.(j)) (Point.Table.mul setup.h_table b_coeffs.(j)));
    let shifted = u.(l) + shift in
    for c = 0 to bits - 1 do
      let bit = (shifted lsr c) land 1 in
      let evals, _ = share_poly drbg ~deg:m ~n (Scalar.of_int bit) in
      for i = 0 to n - 1 do
        bit_shares.(i).((l * bits) + c) <- evals.(i)
      done
    done
  done;
  (coord_shares, blind_shares, bit_shares, checks)

(* verifier-side batch verification of one dealer's coordinate shares
   against the Pedersen check strings, via one random linear combination *)
let verify_shares setup drbg ~self (msg : dealer_msg) =
  let { d; m; _ } = setup in
  let i = self in
  let alphas = Array.init d (fun _ -> Scalar.random drbg) in
  let v = ref Scalar.zero and b = ref Scalar.zero in
  for l = 0 to d - 1 do
    v := Scalar.add !v (Scalar.mul alphas.(l) msg.coord_shares.(i - 1).(l));
    b := Scalar.add !b (Scalar.mul alphas.(l) msg.blind_shares.(i - 1).(l))
  done;
  let lhs = Point.add (Point.Table.mul setup.g_table !v) (Point.Table.mul setup.h_table !b) in
  (* rhs: big MSM over all d*(m+1) string elements with exponents alpha_l i^j *)
  let x = Scalar.of_int i in
  let pairs = Array.make (d * (m + 1)) (Scalar.zero, Point.identity) in
  for l = 0 to d - 1 do
    let pow = ref Scalar.one in
    for j = 0 to m do
      pairs.((l * (m + 1)) + j) <- (Scalar.mul alphas.(l) !pow, msg.checks.(l).(j));
      pow := Scalar.mul !pow x
    done
  done;
  Point.equal lhs (Msm.msm pairs)

(* verifier's share of the randomized SNIP check polynomial (degree 2m)
   and of the squared-norm polynomial *)
let check_shares setup ~seed ~self (msg : dealer_msg) =
  let { d; bits; _ } = setup in
  let betas, lambdas = snip_coeffs ~seed ~dealer:msg.dealer ~d ~bits in
  let i = self - 1 in
  let shift = Scalar.of_int (1 lsl (bits - 1)) in
  let chi = ref Scalar.zero in
  let rho = ref Scalar.zero in
  for l = 0 to d - 1 do
    let u_share = msg.coord_shares.(i).(l) in
    (* recomposition term: u + shift - sum 2^c bit_c *)
    let recomp = ref (Scalar.add u_share shift) in
    for c = 0 to bits - 1 do
      let b = msg.bit_shares.(i).((l * bits) + c) in
      recomp := Scalar.sub !recomp (Scalar.mul_small b (1 lsl c));
      (* bit-ness term: b (b - 1) *)
      chi := Scalar.add !chi (Scalar.mul betas.((l * bits) + c) (Scalar.mul b (Scalar.sub b Scalar.one)))
    done;
    chi := Scalar.add !chi (Scalar.mul lambdas.(l) !recomp);
    rho := Scalar.add !rho (Scalar.mul u_share u_share)
  done;
  (!chi, !rho)

let interpolate_at_zero points =
  Vsss.recover (List.map (fun (i, v) -> { Vsss.idx = i; value = v }) points)

let run setup ~updates ~bound_b ~cheat ~seed =
  ignore cheat;
  let { d; bits; n; m; _ } = setup in
  if Array.length updates <> n then invalid_arg "Eiffel.run: need n updates";
  let root = Prng.Drbg.create_string seed in
  (* --- dealing (the EIFFeL "commitment": shares + check strings) --- *)
  let commit_total = ref 0.0 in
  let msgs =
    Array.init n (fun i ->
        let drbg = Prng.Drbg.fork root (Printf.sprintf "dealer%d" i) in
        let (coord_shares, blind_shares, bit_shares, checks), dt =
          Types.time (fun () -> deal setup drbg ~u:updates.(i))
        in
        commit_total := !commit_total +. dt;
        { dealer = i + 1; coord_shares; blind_shares; bit_shares; checks })
  in
  (* --- verification: every client checks every dealer --- *)
  let ver_total = ref 0.0 and gen_total = ref 0.0 in
  (* chi/rho evaluations per dealer, indexed by verifier *)
  let chi = Array.make_matrix n n Scalar.zero in
  let rho = Array.make_matrix n n Scalar.zero in
  let share_ok = Array.make_matrix n n true in
  for v = 1 to n do
    let drbg = Prng.Drbg.fork root (Printf.sprintf "verifier%d" v) in
    let (), dt_ver =
      Types.time (fun () ->
          Array.iteri (fun di msg -> share_ok.(di).(v - 1) <- verify_shares setup drbg ~self:v msg) msgs)
    in
    let (), dt_gen =
      Types.time (fun () ->
          Array.iteri
            (fun di msg ->
              let c, r = check_shares setup ~seed ~self:v msg in
              chi.(di).(v - 1) <- c;
              rho.(di).(v - 1) <- r)
            msgs)
    in
    ver_total := !ver_total +. dt_ver;
    gen_total := !gen_total +. dt_gen
  done;
  (* --- server decision --- *)
  let b2 = Risefl_core.Params.bigint_of_float_ceil (bound_b *. bound_b) in
  let accepted = Array.make n false in
  let (), server_verify_s =
    Types.time (fun () ->
        for di = 0 to n - 1 do
          let shares_valid = Array.for_all Fun.id share_ok.(di) in
          if shares_valid then begin
            (* reconstruct the degree-2m check and norm polynomials at 0
               from all n verifier evaluations, tolerating up to
               (n - 2m - 1)/2 lying verifiers (Berlekamp-Welch) *)
            let tolerable = Stdlib.max 0 ((n - ((2 * m) + 1)) / 2) in
            let all row = List.init n (fun i -> (i + 1, row.(i))) in
            let chi0 = Robust_interp.decode_at_zero ~deg:(2 * m) ~errors:tolerable (all chi.(di)) in
            let rho0 = Robust_interp.decode_at_zero ~deg:(2 * m) ~errors:tolerable (all rho.(di)) in
            match (chi0, rho0) with
            | Some chi0, Some rho0 ->
                let norm_ok =
                  let v = Scalar.to_bigint rho0 in
                  (* honest norms are tiny compared to the group order *)
                  B.bit_length v <= (2 * bits) + 40 && B.compare v b2 <= 0
                in
                accepted.(di) <- Scalar.is_zero chi0 && norm_ok
            | _ -> accepted.(di) <- false
          end
        done)
  in
  (* --- aggregation: verifiers send summed shares; server interpolates --- *)
  let acc_ids = List.filter (fun i -> accepted.(i)) (List.init n Fun.id) in
  let aggregate, agg_s =
    Types.time (fun () ->
        match acc_ids with
        | [] -> None
        | _ -> (
            let out = Array.make d 0 in
            try
              for l = 0 to d - 1 do
                let points =
                  List.init (m + 1) (fun vi ->
                      let sum =
                        List.fold_left
                          (fun acc di -> Scalar.add acc msgs.(di).coord_shares.(vi).(l))
                          Scalar.zero acc_ids
                      in
                      (vi + 1, sum))
                in
                let v = interpolate_at_zero points in
                out.(l) <- Scalar.to_int_signed v
              done;
              Some out
            with Failure _ -> None))
  in
  (* comm per client: shares of every coordinate, blind and bit to every
     peer, plus the d check strings; this is the ~2dnb elements of
     Table 1 *)
  let comm = (n * d * (2 + bits) * 32) + (d * (m + 1) * 32) in
  {
    Types.timings =
      {
        Types.client_commit_s = !commit_total /. float_of_int n;
        client_proof_gen_s = !gen_total /. float_of_int n;
        client_proof_ver_s = !ver_total /. float_of_int n;
        server_prep_s = 0.0;
        server_verify_s;
        server_agg_s = agg_s;
        client_comm_bytes = comm;
      };
    accepted;
    aggregate;
  }
