(** Lagrange four-square decomposition (Rabin–Shallit randomized
    algorithm): every non-negative integer is a sum of four squares.
    ACORN's bound proof uses this to show B² − ‖u‖² ≥ 0 with square
    proofs whose cost does not depend on the bit width. *)

(** [decompose n] returns (a, b, c, d) with a²+b²+c²+d² = n, n >= 0.
    Randomized (Rabin–Shallit) with deterministic small-case fallbacks;
    expected polynomial time.
    @raise Invalid_argument on negative input. *)
val decompose : Prng.Drbg.t -> Bigint.t -> Bigint.t * Bigint.t * Bigint.t * Bigint.t

(** [isqrt n] — integer square root (exposed for tests). *)
val isqrt : Bigint.t -> Bigint.t

(** Miller–Rabin primality test (exposed for tests). *)
val is_probable_prime : Prng.Drbg.t -> Bigint.t -> bool
