(** The ACORN baseline (Bell et al., USENIX Security 2023): PRG-SecAgg
    masking for near-plaintext communication, Pedersen commitments, and
    bound proofs whose cost is independent of the bit width b thanks to
    Lagrange four-square decompositions (instead of bit-decomposition
    range proofs).

    Statements proved per client:
    - each coordinate's square is committed correctly (Σ-square proofs);
    - 2^{2(bits−1)} − u_l² ≥ 0 per coordinate (four squares) — the
      overflow guard;
    - B² − Σ u_l² ≥ 0 (four squares) — the L2 bound;
    each "≥ 0" being four committed squares plus a Schnorr opening of the
    residual blind. No Byzantine-robust recovery (as in the paper). *)

type setup

val create_setup : label:string -> d:int -> bits:int -> setup

val run :
  setup -> updates:int array array -> bound_b:float -> cheat:bool array -> seed:string -> Types.outcome
