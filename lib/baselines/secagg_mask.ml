module Scalar = Curve25519.Scalar

let ring = 1 lsl 32
let ring_mask = ring - 1

let pair_drbg ~key ~label =
  let h = Hashfn.Sha256.init () in
  Hashfn.Sha256.update h key;
  Hashfn.Sha256.update_string h "/secagg/";
  Hashfn.Sha256.update_string h label;
  Prng.Drbg.create (Hashfn.Sha256.finalize h)

let mask_scalars ~keys ~self ?active ~label v =
  let out = Array.copy v in
  let included j = match active with None -> true | Some a -> a.(j - 1) in
  Array.iteri
    (fun idx key ->
      let j = idx + 1 in
      if j <> self && included j then begin
        let drbg = pair_drbg ~key ~label in
        for l = 0 to Array.length v - 1 do
          let m = Scalar.random drbg in
          out.(l) <- (if self < j then Scalar.add out.(l) m else Scalar.sub out.(l) m)
        done
      end)
    keys;
  out

let unmask_sum vs =
  match Array.length vs with
  | 0 -> [||]
  | _ ->
      let d = Array.length vs.(0) in
      let acc = Array.make d Scalar.zero in
      Array.iter (fun v -> Array.iteri (fun l x -> acc.(l) <- Scalar.add acc.(l) x) v) vs;
      acc

let mask_ints ~keys ~self ?active ~label v =
  let out = Array.map (fun x -> x land ring_mask) v in
  let included j = match active with None -> true | Some a -> a.(j - 1) in
  Array.iteri
    (fun idx key ->
      let j = idx + 1 in
      if j <> self && included j then begin
        let drbg = pair_drbg ~key ~label in
        for l = 0 to Array.length v - 1 do
          let m = Prng.Drbg.bits drbg 32 in
          out.(l) <- (if self < j then out.(l) + m else out.(l) - m) land ring_mask
        done
      end)
    keys;
  out

let unmask_sum_ints vs =
  match Array.length vs with
  | 0 -> [||]
  | _ ->
      let d = Array.length vs.(0) in
      let acc = Array.make d 0 in
      Array.iter (fun v -> Array.iteri (fun l x -> acc.(l) <- (acc.(l) + x) land ring_mask) v) vs;
      (* back to signed *)
      Array.map (fun x -> if x >= ring / 2 then x - ring else x) acc
