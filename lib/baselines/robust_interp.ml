module Scalar = Curve25519.Scalar

(* Gaussian elimination over the scalar field, one solution with free
   variables pinned to zero. *)
let solve_linear m rhs =
  let rows = Array.length m in
  if rows = 0 then Some [||]
  else begin
    let cols = Array.length m.(0) in
    let a = Array.map Array.copy m in
    let b = Array.copy rhs in
    let pivot_col_of_row = Array.make rows (-1) in
    let row = ref 0 in
    let col = ref 0 in
    while !row < rows && !col < cols do
      (* find a pivot *)
      let p = ref (-1) in
      for i = !row to rows - 1 do
        if !p < 0 && not (Scalar.is_zero a.(i).(!col)) then p := i
      done;
      if !p < 0 then incr col
      else begin
        (* swap and normalize *)
        let tmp = a.(!row) in
        a.(!row) <- a.(!p);
        a.(!p) <- tmp;
        let tb = b.(!row) in
        b.(!row) <- b.(!p);
        b.(!p) <- tb;
        let inv = Scalar.inv a.(!row).(!col) in
        for j = !col to cols - 1 do
          a.(!row).(j) <- Scalar.mul a.(!row).(j) inv
        done;
        b.(!row) <- Scalar.mul b.(!row) inv;
        for i = 0 to rows - 1 do
          if i <> !row && not (Scalar.is_zero a.(i).(!col)) then begin
            let f = a.(i).(!col) in
            for j = !col to cols - 1 do
              a.(i).(j) <- Scalar.sub a.(i).(j) (Scalar.mul f a.(!row).(j))
            done;
            b.(i) <- Scalar.sub b.(i) (Scalar.mul f b.(!row))
          end
        done;
        pivot_col_of_row.(!row) <- !col;
        incr row;
        incr col
      end
    done;
    (* consistency: a zero row with nonzero rhs has no solution *)
    let consistent = ref true in
    for i = !row to rows - 1 do
      if not (Scalar.is_zero b.(i)) then consistent := false
    done;
    if not !consistent then None
    else begin
      let x = Array.make cols Scalar.zero in
      for i = 0 to !row - 1 do
        x.(pivot_col_of_row.(i)) <- b.(i)
      done;
      Some x
    end
  end

let eval_poly coeffs x =
  let acc = ref Scalar.zero in
  for j = Array.length coeffs - 1 downto 0 do
    acc := Scalar.add (Scalar.mul !acc x) coeffs.(j)
  done;
  !acc

(* exact division of q by the monic polynomial e; None on remainder *)
let div_exact q e =
  let dq = Array.length q - 1 and de = Array.length e - 1 in
  if dq < de then if Array.for_all Scalar.is_zero q then Some [| Scalar.zero |] else None
  else begin
    let r = Array.copy q in
    let out = Array.make (dq - de + 1) Scalar.zero in
    for i = dq - de downto 0 do
      let c = r.(i + de) in
      out.(i) <- c;
      if not (Scalar.is_zero c) then
        for j = 0 to de do
          r.(i + j) <- Scalar.sub r.(i + j) (Scalar.mul c e.(j))
        done
    done;
    if Array.for_all Scalar.is_zero r then Some out else None
  end

let decode ~deg ~errors points =
  let n = List.length points in
  if errors < 0 || n < deg + (2 * errors) + 1 then invalid_arg "Robust_interp.decode: too few points";
  let points = Array.of_list points in
  let try_with e =
    (* unknowns: q_0..q_{deg+e}, e_0..e_{e-1}; E = x^e + sum e_j x^j *)
    let nq = deg + e + 1 in
    let cols = nq + e in
    let m =
      Array.map
        (fun (xi, yi) ->
          let x = Scalar.of_int xi in
          let row = Array.make cols Scalar.zero in
          let pow = ref Scalar.one in
          for j = 0 to nq - 1 do
            row.(j) <- !pow;
            (* the error-locator columns carry -y_i x_i^j for j < e *)
            if j < e then row.(nq + j) <- Scalar.neg (Scalar.mul yi !pow);
            pow := Scalar.mul !pow x
          done;
          row)
        points
    in
    let rhs =
      Array.map
        (fun (xi, yi) ->
          let x = Scalar.of_int xi in
          (* y_i * x_i^e *)
          let p = ref Scalar.one in
          for _ = 1 to e do
            p := Scalar.mul !p x
          done;
          Scalar.mul yi !p)
        points
    in
    match solve_linear m rhs with
    | None -> None
    | Some sol ->
        let q = Array.sub sol 0 nq in
        let epoly = Array.append (Array.sub sol nq e) [| Scalar.one |] in
        (match div_exact q epoly with
        | None -> None
        | Some p ->
            let p =
              if Array.length p <= deg + 1 then Array.append p (Array.make (deg + 1 - Array.length p) Scalar.zero)
              else Array.sub p 0 (deg + 1)
            in
            (* accept only if it disagrees with at most [errors] points *)
            let wrong = ref 0 in
            Array.iter
              (fun (xi, yi) -> if not (Scalar.equal (eval_poly p (Scalar.of_int xi)) yi) then incr wrong)
              points;
            if !wrong <= errors then Some p else None)
  in
  (* try the full error budget first; degenerate systems occasionally need
     a smaller locator degree when there are fewer actual errors *)
  let rec attempt e = if e < 0 then None else match try_with e with Some p -> Some p | None -> attempt (e - 1) in
  attempt errors

let decode_at_zero ~deg ~errors points =
  Option.map (fun p -> p.(0)) (decode ~deg ~errors points)
