module B = Bigint

let isqrt n =
  if B.sign n < 0 then invalid_arg "Foursquare.isqrt: negative";
  if B.is_zero n then B.zero
  else begin
    (* Newton's method with a power-of-two seed above the root *)
    let x = ref (B.shift_left B.one ((B.bit_length n + 1) / 2)) in
    let continue = ref true in
    while !continue do
      let x' = B.shift_right (B.add !x (B.div n !x)) 1 in
      if B.compare x' !x >= 0 then continue := false else x := x'
    done;
    !x
  end

let is_probable_prime drbg n =
  if B.compare n B.two < 0 then false
  else if B.equal n B.two then true
  else if not (B.testbit n 0) then false
  else begin
    (* small trial division first *)
    let small = [ 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ] in
    let rec trial = function
      | [] -> None
      | p :: tl ->
          let bp = B.of_int p in
          if B.equal n bp then Some true
          else if B.is_zero (B.rem n bp) then Some false
          else trial tl
    in
    match trial small with
    | Some r -> r
    | None ->
        (* miller-rabin: n - 1 = 2^s * d *)
        let nm1 = B.sub n B.one in
        let s = ref 0 in
        let d = ref nm1 in
        while not (B.testbit !d 0) do
          d := B.shift_right !d 1;
          incr s
        done;
        let witness a =
          let x = ref (B.mod_pow a !d n) in
          if B.equal !x B.one || B.equal !x nm1 then false
          else begin
            let composite = ref true in
            (try
               for _ = 1 to !s - 1 do
                 x := B.erem (B.mul !x !x) n;
                 if B.equal !x nm1 then begin
                   composite := false;
                   raise Exit
                 end
               done
             with Exit -> ());
            !composite
          end
        in
        let rounds = 32 in
        let ok = ref true in
        (try
           for _ = 1 to rounds do
             let a = B.add B.two (B.erem (B.random ~bits:(B.bit_length n + 16) (Prng.Drbg.rand26 drbg)) (B.sub n (B.of_int 3))) in
             if witness a then begin
               ok := false;
               raise Exit
             end
           done
         with Exit -> ());
        !ok
  end

(* two-square decomposition of a prime p = 1 mod 4 (Hermite–Serret):
   find s with s^2 = -1 mod p, then Euclid-descend (p, s) below sqrt p. *)
let two_square drbg p =
  let pm1_4 = B.shift_right (B.sub p B.one) 2 in
  let rec find_s tries =
    if tries = 0 then None
    else begin
      let u = B.add B.two (B.erem (B.random ~bits:(B.bit_length p + 16) (Prng.Drbg.rand26 drbg)) (B.sub p (B.of_int 3))) in
      let s = B.mod_pow u pm1_4 p in
      if B.equal (B.erem (B.mul s s) p) (B.sub p B.one) then Some s else find_s (tries - 1)
    end
  in
  match find_s 64 with
  | None -> None
  | Some s ->
      let a = ref p and b = ref s in
      let root = isqrt p in
      while B.compare !b root > 0 do
        let r = B.rem !a !b in
        a := !b;
        b := r
      done;
      if B.is_zero !b then None
      else begin
        let r = B.rem !a !b in
        if B.equal (B.add (B.mul !b !b) (B.mul r r)) p then Some (!b, r) else None
      end

let brute_force n =
  (* exact search for small n *)
  let ni = B.to_int n in
  let lim = B.to_int (isqrt n) in
  let result = ref None in
  (try
     for a = 0 to lim do
       let ra = ni - (a * a) in
       let lb = int_of_float (sqrt (float_of_int ra)) + 1 in
       for b = 0 to min a lb do
         let rb = ra - (b * b) in
         if rb >= 0 then begin
           let lc = int_of_float (sqrt (float_of_int rb)) + 1 in
           for c = 0 to min b lc do
             let rc = rb - (c * c) in
             if rc >= 0 then begin
               let d = int_of_float (sqrt (float_of_int rc)) in
               for dd = max 0 (d - 1) to d + 1 do
                 if dd * dd = rc then begin
                   result := Some (B.of_int a, B.of_int b, B.of_int c, B.of_int dd);
                   raise Exit
                 end
               done
             end
           done
         end
       done
     done
   with Exit -> ());
  match !result with
  | Some r -> r
  | None -> failwith "Foursquare.brute_force: unreachable (Lagrange)"

let rec decompose drbg n =
  if B.sign n < 0 then invalid_arg "Foursquare.decompose: negative";
  if B.bit_length n <= 12 then brute_force n
  else if B.is_zero (B.rem n (B.of_int 4)) then begin
    (* n = 4m: decompose m and double *)
    let a, b, c, d = decompose drbg (B.shift_right n 2) in
    (B.shift_left a 1, B.shift_left b 1, B.shift_left c 1, B.shift_left d 1)
  end
  else begin
    let root = isqrt n in
    let rec attempt tries =
      if tries = 0 then failwith "Foursquare.decompose: retry budget exhausted"
      else begin
        let rand_upto m =
          if B.is_zero m then B.zero
          else B.erem (B.random ~bits:(B.bit_length m + 16) (Prng.Drbg.rand26 drbg)) (B.add m B.one)
        in
        let x = rand_upto root in
        let rem1 = B.sub n (B.mul x x) in
        let y = rand_upto (isqrt rem1) in
        let t = B.sub rem1 (B.mul y y) in
        if B.is_zero t then (x, y, B.zero, B.zero)
        else if B.equal t B.one then (x, y, B.one, B.zero)
        else if B.equal (B.erem t (B.of_int 4)) B.one && is_probable_prime drbg t then begin
          match two_square drbg t with
          | Some (a, b) -> (x, y, a, b)
          | None -> attempt (tries - 1)
        end
        else attempt (tries - 1)
      end
    in
    let a, b, c, d = attempt 20_000 in
    assert (B.equal n (List.fold_left B.add B.zero (List.map (fun v -> B.mul v v) [ a; b; c; d ])));
    (a, b, c, d)
  end
