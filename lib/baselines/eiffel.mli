(** The EIFFeL baseline (Roy Chowdhury et al., CCS 2022): secure
    aggregation with verified inputs via verifiable Shamir sharing and
    secret-shared proof checking. Closed source; reimplemented (as the
    RiseFL authors also had to).

    Per iteration, each client (as dealer) Shamir-shares every coordinate
    of its update {e and every bit of every coordinate} among all n
    clients (degree m polynomials), with Pedersen-VSSS check strings on
    the coordinate polynomials. Every client then acts as a verifier: it
    checks the share openings against the check strings (the
    O(nmd/log md) g.e. client cost of Table 1) and evaluates its share of
    a randomized SNIP-style check polynomial — bit-ness of every bit
    share, bit-recomposition of every coordinate, and the L2 bound — all
    of degree ≤ 2m, which the server reconstructs (n ≥ 2m+1) and tests.

    Simplifications vs the original, preserving the cost profile:
    bit-polynomials carry no check strings (their consistency is enforced
    by the randomized check), and the squared norm Σu² is reconstructed
    in the clear for the bound comparison (the original hides it behind
    another shared comparison circuit). *)

type setup

val create_setup : label:string -> d:int -> bits:int -> n:int -> m:int -> setup

val run :
  setup -> updates:int array array -> bound_b:float -> cheat:bool array -> seed:string -> Types.outcome
