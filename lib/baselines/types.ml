(** Common result shape for the three baseline systems, mirroring the
    stage breakdown reported in Table 2 of the paper. *)

type timings = {
  client_commit_s : float;  (** per-client commitment generation *)
  client_proof_gen_s : float;  (** per-client proof generation *)
  client_proof_ver_s : float;  (** per-client verification work (EIFFeL) *)
  server_prep_s : float;
  server_verify_s : float;  (** total proof verification on the server *)
  server_agg_s : float;
  client_comm_bytes : int;  (** upload + download per client *)
}

type outcome = {
  timings : timings;
  accepted : bool array;  (** per client *)
  aggregate : int array option;
}

let time f = Telemetry.Clock.time f

let zero_timings =
  {
    client_commit_s = 0.0;
    client_proof_gen_s = 0.0;
    client_proof_ver_s = 0.0;
    server_prep_s = 0.0;
    server_verify_s = 0.0;
    server_agg_s = 0.0;
    client_comm_bytes = 0;
  }
