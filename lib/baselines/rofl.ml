module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Pedersen = Commitments.Pedersen
module Sigma = Zkp.Sigma
module Range_proof = Zkp.Range_proof
module Transcript = Zkp.Transcript

type setup = {
  d : int;
  bits : int;
  slack_bits : int;
  key : Pedersen.key;
  bp_gens : Range_proof.gens;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let create_setup ~label ~d ~bits =
  let g = Curve25519.Gens.derive (label ^ "/rofl/g") in
  let h = Curve25519.Gens.derive (label ^ "/rofl/h") in
  let rec lg acc v = if v <= 1 then acc else lg (acc + 1) ((v + 1) / 2) in
  let slack_bits = Stdlib.min 128 (next_pow2 ((2 * (bits - 1)) + lg 0 d + 2)) in
  {
    d;
    bits;
    slack_bits;
    key = Pedersen.make_key ~g ~h;
    bp_gens =
      Range_proof.make_gens ~label:(label ^ "/rofl/bp") (Stdlib.max (next_pow2 d * bits) slack_bits);
  }

(* Batched well-formedness proof for all d ElGamal pairs of one client:
   knowledge of (u_l, r_l) with c_l = g^{u_l} h^{r_l} and d_l = g^{r_l},
   one Fiat-Shamir challenge for the whole batch. *)
type wf_proof = {
  a1 : Point.t array;
  a2 : Point.t array;
  z1 : Scalar.t array;
  z2 : Scalar.t array;
}

let wf_prove drbg tr key ~cs ~ds ~us ~rs =
  let d = Array.length cs in
  Transcript.append_points tr ~label:"rofl-wf/c" cs;
  Transcript.append_points tr ~label:"rofl-wf/d" ds;
  let asc = Array.init d (fun _ -> Scalar.random drbg) in
  let bsc = Array.init d (fun _ -> Scalar.random drbg) in
  let a1 = Array.init d (fun l -> Pedersen.commit key ~value:asc.(l) ~blind:bsc.(l)) in
  let a2 = Array.init d (fun l -> Point.Table.mul key.Pedersen.g_table bsc.(l)) in
  Transcript.append_points tr ~label:"rofl-wf/A1" a1;
  Transcript.append_points tr ~label:"rofl-wf/A2" a2;
  let ch = Transcript.challenge_scalar tr ~label:"rofl-wf/ch" in
  {
    a1;
    a2;
    z1 = Array.init d (fun l -> Scalar.add asc.(l) (Scalar.mul ch (Scalar.of_int us.(l))));
    z2 = Array.init d (fun l -> Scalar.add bsc.(l) (Scalar.mul ch rs.(l)));
  }

let wf_verify tr key ~cs ~ds proof =
  let d = Array.length cs in
  if Array.length proof.a1 <> d || Array.length proof.z1 <> d then false
  else begin
    Transcript.append_points tr ~label:"rofl-wf/c" cs;
    Transcript.append_points tr ~label:"rofl-wf/d" ds;
    Transcript.append_points tr ~label:"rofl-wf/A1" proof.a1;
    Transcript.append_points tr ~label:"rofl-wf/A2" proof.a2;
    let ch = Transcript.challenge_scalar tr ~label:"rofl-wf/ch" in
    let ok = ref true in
    let l = ref 0 in
    while !ok && !l < d do
      let i = !l in
      ok :=
        Point.equal
          (Pedersen.commit key ~value:proof.z1.(i) ~blind:proof.z2.(i))
          (Point.add proof.a1.(i) (Point.mul ch cs.(i)))
        && Point.equal
             (Point.Table.mul key.Pedersen.g_table proof.z2.(i))
             (Point.add proof.a2.(i) (Point.mul ch ds.(i)));
      incr l
    done;
    !ok
  end

type client_msg = {
  cs : Point.t array;  (* g^{u_l} h^{r_l} *)
  ds : Point.t array;  (* g^{r_l} *)
  c2s : Point.t array;  (* g^{u_l^2} h^{r2_l} *)
  wf : wf_proof;
  squares : Sigma.Square.proof array;
  coord_range : Range_proof.proof;
  slack_range : Range_proof.proof;
}

let bi = Bigint.of_int

let make_transcript ~seed ~client =
  let tr = Transcript.create "rofl/proof/v1" in
  Transcript.append_bytes tr ~label:"seed" (Bytes.of_string seed);
  Transcript.append_int tr ~label:"client" client;
  tr

let client_round setup drbg ~seed ~id ~u ~bound_b ~cheat =
  let d = setup.d in
  let g = setup.key.Pedersen.g and h = setup.key.Pedersen.h in
  let (cs, ds, c2s, rs, r2s), commit_s =
    Types.time (fun () ->
        let rs = Array.init d (fun _ -> Scalar.random drbg) in
        let r2s = Array.init d (fun _ -> Scalar.random drbg) in
        let cs = Array.init d (fun l -> Pedersen.commit_small setup.key ~value:u.(l) ~blind:rs.(l)) in
        let ds = Array.init d (fun l -> Point.Table.mul setup.key.Pedersen.g_table rs.(l)) in
        let c2s =
          Array.init d (fun l ->
              let v2 = Scalar.of_bigint (Bigint.mul (bi u.(l)) (bi u.(l))) in
              Pedersen.commit setup.key ~value:v2 ~blind:r2s.(l))
        in
        (cs, ds, c2s, rs, r2s))
  in
  let msg, proof_s =
    Types.time (fun () ->
        let tr = make_transcript ~seed ~client:id in
        let wf = wf_prove drbg tr setup.key ~cs ~ds ~us:u ~rs in
        let squares =
          Array.init d (fun l ->
              Sigma.Square.prove drbg tr ~g ~q:h ~y1:cs.(l) ~y2:c2s.(l) ~x:(Scalar.of_int u.(l))
                ~s:rs.(l) ~s':r2s.(l))
        in
        let shift = Bigint.shift_left Bigint.one (setup.bits - 1) in
        (* out-of-range coordinates (a cheating client) are clamped into the
           witness domain; the verifier's commitment recomputation then
           disagrees and the proof is rejected *)
        let top = Bigint.sub (Bigint.shift_left Bigint.one setup.bits) Bigint.one in
        let coord_values =
          Array.map
            (fun v ->
              let x = Bigint.add (bi v) shift in
              if Bigint.sign x < 0 then Bigint.zero else if Bigint.compare x top > 0 then top else x)
            u
        in
        let coord_range =
          Range_proof.prove drbg tr ~gens:setup.bp_gens ~g ~h ~bits:setup.bits ~values:coord_values
            ~blinds:rs
        in
        let b2 = Risefl_core.Params.bigint_of_float_ceil (bound_b *. bound_b) in
        let sum_sq = Array.fold_left (fun acc v -> Bigint.add acc (Bigint.mul (bi v) (bi v))) Bigint.zero u in
        let slack = Bigint.sub b2 sum_sq in
        (* a cheating (out-of-bound) client has negative slack; the best it
           can do is prove a clamped value, which the verifier's own
           commitment recomputation then rejects *)
        let slack = if Bigint.sign slack < 0 then Bigint.zero else slack in
        let slack_blind = Scalar.neg (Array.fold_left Scalar.add Scalar.zero r2s) in
        let slack_range =
          Range_proof.prove drbg tr ~gens:setup.bp_gens ~g ~h ~bits:setup.slack_bits ~values:[| slack |]
            ~blinds:[| slack_blind |]
        in
        { cs; ds; c2s; wf; squares; coord_range; slack_range })
  in
  ignore cheat;
  (msg, commit_s, proof_s, rs)

let verify_client setup tr ~bound_b (m : client_msg) =
  let d = setup.d in
  let g = setup.key.Pedersen.g and h = setup.key.Pedersen.h in
  Array.length m.cs = d
  && Array.length m.ds = d
  && Array.length m.c2s = d
  && wf_verify tr setup.key ~cs:m.cs ~ds:m.ds m.wf
  && (let ok = ref true in
      Array.iteri
        (fun l sq -> if !ok then ok := Sigma.Square.verify tr ~g ~q:h ~y1:m.cs.(l) ~y2:m.c2s.(l) sq)
        m.squares;
      !ok)
  && (let shift_pt =
        Point.Table.mul setup.key.Pedersen.g_table
          (Scalar.of_bigint (Bigint.shift_left Bigint.one (setup.bits - 1)))
      in
      let coord_commitments = Array.map (fun c -> Point.add c shift_pt) m.cs in
      Range_proof.verify tr ~gens:setup.bp_gens ~g ~h ~bits:setup.bits ~commitments:coord_commitments
        m.coord_range)
  &&
  let b2 = Risefl_core.Params.bigint_of_float_ceil (bound_b *. bound_b) in
  let p_commit =
    Point.sub
      (Point.Table.mul setup.key.Pedersen.g_table (Scalar.of_bigint b2))
      (Array.fold_left Point.add Point.identity m.c2s)
  in
  Range_proof.verify tr ~gens:setup.bp_gens ~g ~h ~bits:setup.slack_bits ~commitments:[| p_commit |]
    m.slack_range

let msg_size (m : client_msg) =
  let pts = Array.length m.cs + Array.length m.ds + Array.length m.c2s in
  let wf_pts = Array.length m.wf.a1 + Array.length m.wf.a2 in
  let wf_sc = Array.length m.wf.z1 + Array.length m.wf.z2 in
  (32 * (pts + wf_pts + wf_sc))
  + Array.fold_left (fun acc s -> acc + Sigma.Square.size_bytes s) 0 m.squares
  + Range_proof.size_bytes m.coord_range
  + Range_proof.size_bytes m.slack_range

let run setup ~updates ~bound_b ~cheat ~seed =
  let n = Array.length updates in
  let root = Prng.Drbg.create_string seed in
  (* per-pair symmetric keys for blind masking *)
  let pair_key i j =
    let lo = Stdlib.min i j and hi = Stdlib.max i j in
    Hashfn.Sha256.digest_string (Printf.sprintf "%s/rofl-pair/%d-%d" seed lo hi)
  in
  let commit_total = ref 0.0 and proof_total = ref 0.0 in
  let msgs =
    Array.init n (fun i ->
        let drbg = Prng.Drbg.fork root (Printf.sprintf "client%d" i) in
        let msg, cs, ps, rs =
          client_round setup drbg ~seed ~id:(i + 1) ~u:updates.(i) ~bound_b ~cheat:cheat.(i)
        in
        commit_total := !commit_total +. cs;
        proof_total := !proof_total +. ps;
        (msg, rs))
  in
  let accepted = Array.make n false in
  let (), verify_s =
    Types.time (fun () ->
        Array.iteri
          (fun i (msg, _) ->
            let tr = make_transcript ~seed ~client:(i + 1) in
            accepted.(i) <- verify_client setup tr ~bound_b msg)
          msgs)
  in
  (* aggregation over the accepted set: blind vectors masked pairwise *)
  let acc_ids = List.filter (fun i -> accepted.(i)) (List.init n Fun.id) in
  let aggregate, agg_s =
    Types.time (fun () ->
        match acc_ids with
        | [] -> None
        | _ ->
            (* each accepted client uploads its blind vector under pairwise
               masks (restricted to the accepted set); the server's sum
               cancels every mask and reveals only sum_i r_il *)
            let active = Array.map (fun a -> a) accepted in
            let masked =
              List.map
                (fun i ->
                  let keys = Array.init n (fun j -> pair_key i j) in
                  Secagg_mask.mask_scalars ~keys ~self:(i + 1) ~active ~label:seed (snd msgs.(i)))
                acc_ids
            in
            let r_sums = Secagg_mask.unmask_sum (Array.of_list masked) in
            let max_abs = n * (1 lsl (setup.bits - 1)) in
            let solver = Curve25519.Dlog.create ~base:setup.key.Pedersen.g ~max_abs () in
            let targets =
              Array.init setup.d (fun l ->
                  let prod =
                    List.fold_left (fun acc i -> Point.add acc (fst msgs.(i)).cs.(l)) Point.identity acc_ids
                  in
                  Point.add prod (Point.mul (Scalar.neg r_sums.(l)) setup.key.Pedersen.h))
            in
            let solved = Curve25519.Dlog.solve_many solver targets in
            if Array.for_all (fun v -> v <> None) solved then
              Some (Array.map (fun v -> Option.get v) solved)
            else None)
  in
  let comm = if n = 0 then 0 else msg_size (fst msgs.(0)) + (32 * setup.d) in
  {
    Types.timings =
      {
        Types.client_commit_s = !commit_total /. float_of_int (Stdlib.max 1 n);
        client_proof_gen_s = !proof_total /. float_of_int (Stdlib.max 1 n);
        client_proof_ver_s = 0.0;
        server_prep_s = 0.0;
        server_verify_s = verify_s;
        server_agg_s = agg_s;
        client_comm_bytes = comm;
      };
    accepted;
    aggregate;
  }
