(** Robust polynomial reconstruction over ℤ_ℓ (Berlekamp–Welch).

    EIFFeL's server reconstructs degree-2m check polynomials from the
    verifiers' evaluations; with up to [e] malicious verifiers lying
    about their shares, plain Lagrange interpolation is poisoned. Given
    n ≥ deg + 2e + 1 points of which at most [e] are wrong,
    Berlekamp–Welch recovers the unique consistent polynomial (this is
    Reed–Solomon decoding; the paper's footnote 5 points at the same
    n ≥ 4m+1 regime for EIFFeL's multiplicative sharing). *)

module Scalar = Curve25519.Scalar

(** [solve_linear m rhs] — one solution x of m·x = rhs over ℤ_ℓ by
    Gaussian elimination (free variables set to 0); [None] if
    inconsistent. Exposed for tests. *)
val solve_linear : Scalar.t array array -> Scalar.t array -> Scalar.t array option

(** [eval_poly coeffs x] — Horner evaluation (coefficients low-to-high). *)
val eval_poly : Scalar.t array -> Scalar.t -> Scalar.t

(** [decode ~deg ~errors points] — points are (x, y) with distinct x;
    returns the coefficient vector (length deg+1) of the unique
    polynomial of degree ≤ deg agreeing with all but at most [errors]
    points, or [None] if no such polynomial exists.
    Requires [List.length points >= deg + 2*errors + 1]. *)
val decode : deg:int -> errors:int -> (int * Scalar.t) list -> Scalar.t array option

(** [decode_at_zero ~deg ~errors points] — convenience: the recovered
    polynomial's value at 0 (the shared secret). *)
val decode_at_zero : deg:int -> errors:int -> (int * Scalar.t) list -> Scalar.t option
