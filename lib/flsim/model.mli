(** Differentiable classifiers with a flat parameter-vector interface —
    the shape federated learning needs: the server only ever sees (sums
    of) flattened gradient vectors of dimension d = [n_params].

    Two architectures: multinomial logistic (softmax) regression, and a
    one-hidden-layer MLP with tanh activations (hand-written backprop).
    These stand in for the paper's CNN / ResNet-18 / TabNet — any
    gradient-based model exposes the identical update-vector interface,
    which is all the integrity-check machinery interacts with. *)

type arch =
  | Softmax
  | Mlp of int  (** hidden width *)

type t

(** [create drbg arch ~n_features ~n_classes] — small random init. *)
val create : Prng.Drbg.t -> arch -> n_features:int -> n_classes:int -> t

val n_params : t -> int

(** Current parameters, flattened. *)
val params : t -> float array

(** Overwrite parameters from a flat vector. *)
val set_params : t -> float array -> unit

(** [gradient t data ~batch drbg] — average cross-entropy gradient over a
    sampled batch (the whole dataset when [batch] is [None]), flattened. *)
val gradient : t -> Dataset.t -> batch:int option -> Prng.Drbg.t -> float array

(** [step t update ~lr] — params ← params − lr·update. *)
val step : t -> float array -> lr:float -> unit

(** Classification accuracy on a dataset. *)
val accuracy : t -> Dataset.t -> float

(** Mean cross-entropy loss (for monitoring). *)
val loss : t -> Dataset.t -> float
