type t = Sign_flip of float | Scaling of float | Label_flip of int * int | Additive_noise of float

let poison_data t data =
  match t with
  | Label_flip (a, b) -> Dataset.relabel data ~from_class:a ~to_class:b
  | Sign_flip _ | Scaling _ | Additive_noise _ -> data

let poison_update t drbg u =
  match t with
  | Sign_flip c -> Array.map (fun v -> -.c *. v) u
  | Scaling c -> Array.map (fun v -> c *. v) u
  | Label_flip _ -> u
  | Additive_noise sigma -> Array.map (fun v -> v +. (sigma *. Prng.Drbg.gaussian drbg)) u

let name = function
  | Sign_flip c -> Printf.sprintf "sign-flip(c=%g)" c
  | Scaling c -> Printf.sprintf "scaling(c=%g)" c
  | Label_flip (a, b) -> Printf.sprintf "label-flip(%d->%d)" a b
  | Additive_noise s -> Printf.sprintf "additive-noise(sigma=%g)" s
