type predicate =
  | L2 of float
  | Sphere of float array * float
  | Cosine of float array * float * float
  | Zeno of float array * float * float * float

let norm u = sqrt (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 u)

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. b.(i))) a;
  !acc

let sub a b = Array.mapi (fun i v -> v -. b.(i)) a

(* Zeno++: gamma <v,u> - rho |u|^2 >= gamma eps  <=>
   |u - (gamma/2rho) v| <= sqrt(gamma^2/4rho^2 |v|^2 - gamma eps / rho) (§4.6) *)
let zeno_to_sphere v gamma rho eps =
  let center = Array.map (fun x -> gamma /. (2.0 *. rho) *. x) v in
  let rad2 =
    (gamma *. gamma /. (4.0 *. rho *. rho) *. dot v v) -. (gamma *. eps /. rho)
  in
  (center, if rad2 <= 0.0 then 0.0 else sqrt rad2)

let strict pred u =
  match pred with
  | L2 b -> norm u <= b
  | Sphere (v, b) -> norm (sub u v) <= b
  | Cosine (v, b, alpha) -> norm u <= b && dot u v >= alpha *. norm u *. norm v
  | Zeno (v, gamma, rho, eps) ->
      let center, b = zeno_to_sphere v gamma rho eps in
      norm (sub u center) <= b

(* Algorithm 2 on floats: pass iff sum of k squared Gaussian projections
   <= B^2 gamma_{k,eps}.  In the protocol, one projection matrix A (from
   the shared seed) is used for every client of a round; [projections]
   lets callers sample A once and reuse it. *)
type projections = { rows : float array array; gamma : float }

let sample_projections ~k ~eps drbg ~d =
  {
    rows = Array.init k (fun _ -> Array.init d (fun _ -> Prng.Drbg.gaussian drbg));
    gamma = Stats.Chisq.quantile_upper ~k ~eps;
  }

let chi2_check_with prj x b =
  let sum = ref 0.0 in
  Array.iter
    (fun row ->
      let proj = ref 0.0 in
      Array.iteri (fun i a -> proj := !proj +. (a *. x.(i))) row;
      sum := !sum +. (!proj *. !proj))
    prj.rows;
  !sum <= b *. b *. prj.gamma

let probabilistic_with prj pred u =
  match pred with
  | L2 b -> chi2_check_with prj u b
  | Sphere (v, b) -> chi2_check_with prj (sub u v) b
  | Cosine (v, b, alpha) ->
      (* the direction constraint uses the (committed) inner product, which
         the server checks exactly; the norm side is probabilistic *)
      chi2_check_with prj u b && dot u v >= alpha *. norm u *. norm v
  | Zeno (v, gamma, rho, eps') ->
      let center, b = zeno_to_sphere v gamma rho eps' in
      chi2_check_with prj (sub u center) b

let probabilistic ~k ~eps drbg pred u =
  probabilistic_with (sample_projections ~k ~eps drbg ~d:(Array.length u)) pred u

let name = function
  | L2 _ -> "L2"
  | Sphere _ -> "sphere"
  | Cosine _ -> "cosine"
  | Zeno _ -> "zeno++"
