(** The four Byzantine attacks evaluated in §6.3 of the paper. The first
    two and the last transform the malicious client's gradient; the label
    flip poisons its training data instead. *)

type t =
  | Sign_flip of float  (** submit −c·u, c > 1 (Damaskinos et al.) *)
  | Scaling of float  (** submit c·u, c > 1 (Bhagoji et al.) *)
  | Label_flip of int * int  (** relabel class a as class b (Sun et al.) *)
  | Additive_noise of float  (** add N(0, σ²) noise per coordinate (Li et al.) *)

(** [poison_data t data] — data-level component (label flip only). *)
val poison_data : t -> Dataset.t -> Dataset.t

(** [poison_update t drbg u] — gradient-level component. *)
val poison_update : t -> Prng.Drbg.t -> float array -> float array

val name : t -> string
