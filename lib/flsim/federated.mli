(** The federated training loop of §6.3 / Figure 8: n clients (the first
    [n_malicious] of them Byzantine), a server applying one of three
    integrity-checking regimes, test accuracy recorded every round. *)

(** Which defense predicate to build each round (as a function of the
    current reference direction and auto-calibrated bound). *)
type defense_kind =
  | D_l2
  | D_sphere
  | D_cosine of float  (** α *)

type checker =
  | Np_nc  (** no checking: every update is aggregated *)
  | Np_sc of defense_kind  (** strict plaintext checking *)
  | Risefl of defense_kind * int  (** probabilistic checking with k samples *)

type config = {
  n_clients : int;
  n_malicious : int;
  attack : Attack.t;
  checker : checker;
  rounds : int;
  lr : float;
  batch : int option;
  arch : Model.arch;
  bound_factor : float;
      (** B = bound_factor × median honest norm of round 1 (auto-calibration) *)
  non_iid_alpha : float option;
      (** [Some α]: Dirichlet(α) non-IID client partition; [None]: IID *)
  seed : string;
}

type round_log = { round : int; accuracy : float; rejected : int list }

type result = { logs : round_log array; final_accuracy : float }

(** [train config ~data] — [data] is the full dataset; it is split 80/20
    into train/test and the training part partitioned IID across clients.
    Deterministic in [config.seed]. *)
val train : config -> data:Dataset.t -> result
