(** Integrity-check predicates (§4.6) and their checkers.

    Three checker variants mirror the paper's Figure 8 setup:
    - [Strict] (NP-SC): the server sees plaintext updates and applies the
      predicate exactly;
    - [Probabilistic] (RiseFL): the predicate is evaluated through the
      k-projection χ² test of Algorithm 2 — the float-level equivalent of
      what the cryptographic pipeline enforces (the crypto layer's
      faithfulness is established by the core test-suite);
    - no checking (NP-NC) is expressed by not calling a checker at all. *)

type predicate =
  | L2 of float  (** ‖u‖₂ ≤ B *)
  | Sphere of float array * float  (** ‖u − v‖₂ ≤ B *)
  | Cosine of float array * float * float
      (** ‖u‖₂ ≤ B and ⟨u,v⟩ ≥ α‖u‖‖v‖ (Bagdasaryan/Cao) *)
  | Zeno of float array * float * float * float
      (** γ⟨v,u⟩ − ρ‖u‖² ≥ γε, converted to a sphere test (§4.6) *)

(** Euclidean norm (exposed for bound calibration). *)
val norm : float array -> float

(** [strict pred u] — exact plaintext evaluation (NP-SC). *)
val strict : predicate -> float array -> bool

(** [probabilistic ~k ~eps drbg pred u] — Algorithm 2: sample k Gaussian
    directions, compare Σ⟨aₜ,x⟩² against B²·γ_{k,ε} for the predicate's
    underlying norm test x (u, or u − v for sphere/Zeno). The cosine
    direction constraint is evaluated on its committed inner product. *)
val probabilistic : k:int -> eps:float -> Prng.Drbg.t -> predicate -> float array -> bool

(** A sampled projection matrix (the round's shared A in the protocol),
    reusable across all clients of a round. *)
type projections

val sample_projections : k:int -> eps:float -> Prng.Drbg.t -> d:int -> projections

(** [probabilistic_with prj pred u] — like {!probabilistic} with a
    pre-sampled matrix; this is how the protocol actually works (one A
    per round for everyone) and is k·d draws cheaper per client. *)
val probabilistic_with : projections -> predicate -> float array -> bool

val name : predicate -> string
