type t = { x : float array array; y : int array; n_features : int; n_classes : int }

let gaussian_blobs drbg ~n ~features ~classes ~spread =
  let centers =
    Array.init classes (fun _ -> Array.init features (fun _ -> 2.0 *. Prng.Drbg.gaussian drbg))
  in
  let y = Array.init n (fun _ -> Prng.Drbg.uniform_int drbg classes) in
  let x =
    Array.map
      (fun c -> Array.init features (fun f -> centers.(c).(f) +. (spread *. Prng.Drbg.gaussian drbg)))
      y
  in
  { x; y; n_features = features; n_classes = classes }

let organ_like drbg ~n =
  let side = 28 in
  let classes = 11 in
  (* class prototype: an anisotropic blob at a class-specific location *)
  let protos =
    Array.init classes (fun _ ->
        let cx = 6.0 +. (16.0 *. Prng.Drbg.float drbg) in
        let cy = 6.0 +. (16.0 *. Prng.Drbg.float drbg) in
        let sx = 2.0 +. (4.0 *. Prng.Drbg.float drbg) in
        let sy = 2.0 +. (4.0 *. Prng.Drbg.float drbg) in
        let amp = 0.6 +. (0.4 *. Prng.Drbg.float drbg) in
        (cx, cy, sx, sy, amp))
  in
  let y = Array.init n (fun _ -> Prng.Drbg.uniform_int drbg classes) in
  let x =
    Array.map
      (fun c ->
        let cx, cy, sx, sy, amp = protos.(c) in
        (* jitter the organ's position per sample, as anatomy varies *)
        let jx = Prng.Drbg.gaussian drbg and jy = Prng.Drbg.gaussian drbg in
        Array.init (side * side) (fun i ->
            let px = float_of_int (i mod side) and py = float_of_int (i / side) in
            let dx = (px -. cx -. jx) /. sx and dy = (py -. cy -. jy) /. sy in
            let v = amp *. exp (-0.5 *. ((dx *. dx) +. (dy *. dy))) in
            Float.max 0.0 (Float.min 1.0 (v +. (0.05 *. Prng.Drbg.gaussian drbg)))))
      y
  in
  { x; y; n_features = side * side; n_classes = classes }

let covtype_like drbg ~n =
  let numeric = 10 and categorical = 44 in
  let classes = 7 in
  (* class-conditional means for numeric features; class-conditional
     categorical propensities for the one-hot block *)
  let means =
    Array.init classes (fun _ -> Array.init numeric (fun _ -> 1.5 *. Prng.Drbg.gaussian drbg))
  in
  let cat_probs =
    Array.init classes (fun _ -> Array.init categorical (fun _ -> Prng.Drbg.float drbg *. 0.5))
  in
  let y = Array.init n (fun _ -> Prng.Drbg.uniform_int drbg classes) in
  let x =
    Array.map
      (fun c ->
        let num = Array.init numeric (fun f -> means.(c).(f) +. Prng.Drbg.gaussian drbg) in
        let cat =
          Array.init categorical (fun f -> if Prng.Drbg.float drbg < cat_probs.(c).(f) then 1.0 else 0.0)
        in
        Array.append num cat)
      y
  in
  { x; y; n_features = numeric + categorical; n_classes = classes }

let split drbg t ~test_fraction =
  let n = Array.length t.y in
  let idx = Array.init n Fun.id in
  (* fisher-yates *)
  for i = n - 1 downto 1 do
    let j = Prng.Drbg.uniform_int drbg (i + 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  let n_test = int_of_float (float_of_int n *. test_fraction) in
  let pick lo hi =
    {
      t with
      x = Array.init (hi - lo) (fun i -> t.x.(idx.(lo + i)));
      y = Array.init (hi - lo) (fun i -> t.y.(idx.(lo + i)));
    }
  in
  (pick n_test n, pick 0 n_test)

let partition t ~parts =
  if parts < 1 then invalid_arg "Dataset.partition";
  Array.init parts (fun p ->
      let sel = ref [] in
      Array.iteri (fun i _ -> if i mod parts = p then sel := i :: !sel) t.y;
      let sel = Array.of_list (List.rev !sel) in
      { t with x = Array.map (fun i -> t.x.(i)) sel; y = Array.map (fun i -> t.y.(i)) sel })

(* Marsaglia-Tsang gamma sampling; the alpha < 1 case boosts through
   Gamma(alpha + 1) * U^(1/alpha). *)
let rec gamma_sample drbg alpha =
  if alpha < 1.0 then begin
    let u = Float.max 1e-300 (Prng.Drbg.float drbg) in
    gamma_sample drbg (alpha +. 1.0) *. (u ** (1.0 /. alpha))
  end
  else begin
    let d = alpha -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = Prng.Drbg.gaussian drbg in
      let v = (1.0 +. (c *. x)) ** 3.0 in
      if v <= 0.0 then draw ()
      else begin
        let u = Float.max 1e-300 (Prng.Drbg.float drbg) in
        if log u < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. log v) then d *. v else draw ()
      end
    in
    draw ()
  end

let partition_dirichlet drbg t ~parts ~alpha =
  if parts < 1 then invalid_arg "Dataset.partition_dirichlet";
  if alpha <= 0.0 then invalid_arg "Dataset.partition_dirichlet: alpha must be positive";
  let assignment = Array.make (Array.length t.y) 0 in
  for c = 0 to t.n_classes - 1 do
    (* Dir(alpha) proportions over clients for this class *)
    let g = Array.init parts (fun _ -> gamma_sample drbg alpha) in
    let total = Array.fold_left ( +. ) 0.0 g in
    let cum = Array.make parts 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun p gi ->
        acc := !acc +. (gi /. total);
        cum.(p) <- !acc)
      g;
    Array.iteri
      (fun i yi ->
        if yi = c then begin
          let u = Prng.Drbg.float drbg in
          let rec find p = if p >= parts - 1 || u <= cum.(p) then p else find (p + 1) in
          assignment.(i) <- find 0
        end)
      t.y
  done;
  (* guarantee non-empty parts: steal one sample round-robin if needed *)
  let counts = Array.make parts 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) assignment;
  Array.iteri
    (fun p c ->
      if c = 0 then begin
        (* take a sample from the largest part *)
        let donor = ref 0 in
        Array.iteri (fun q cq -> if cq > counts.(!donor) then donor := q) counts;
        let found = ref false in
        Array.iteri
          (fun i a ->
            if (not !found) && a = !donor then begin
              assignment.(i) <- p;
              found := true
            end)
          assignment;
        counts.(p) <- 1;
        counts.(!donor) <- counts.(!donor) - 1
      end)
    counts;
  Array.init parts (fun p ->
      let sel = ref [] in
      Array.iteri (fun i a -> if a = p then sel := i :: !sel) assignment;
      let sel = Array.of_list (List.rev !sel) in
      { t with x = Array.map (fun i -> t.x.(i)) sel; y = Array.map (fun i -> t.y.(i)) sel })

let relabel t ~from_class ~to_class =
  { t with y = Array.map (fun c -> if c = from_class then to_class else c) t.y }
