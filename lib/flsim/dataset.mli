(** Synthetic classification datasets standing in for the paper's three
    evaluation datasets (OrganAMNIST, OrganSMNIST, Forest Cover Type),
    which are not redistributable in this offline environment. Each
    generator matches the original's dimensionality, class count and
    feature type — the properties that determine the federated gradient
    dimension and the attack/defense dynamics Figure 8 measures. *)

type t = {
  x : float array array;  (** row-major feature matrix *)
  y : int array;  (** labels in [0, n_classes) *)
  n_features : int;
  n_classes : int;
}

(** [gaussian_blobs drbg ~n ~features ~classes ~spread] — isotropic
    Gaussian clusters with random centers; [spread] controls overlap. *)
val gaussian_blobs : Prng.Drbg.t -> n:int -> features:int -> classes:int -> spread:float -> t

(** [organ_like drbg ~n] — 28×28 "medical image"-like inputs (784
    features, 11 classes, mirroring OrganA/SMNIST): each class is a
    smooth 2-D intensity blob with class-specific center/size plus pixel
    noise. *)
val organ_like : Prng.Drbg.t -> n:int -> t

(** [covtype_like drbg ~n] — tabular data mirroring Forest Cover Type: 10
    numeric features + 44 one-hot categorical columns, 7 classes. *)
val covtype_like : Prng.Drbg.t -> n:int -> t

(** [split drbg t ~test_fraction] — shuffled train/test split. *)
val split : Prng.Drbg.t -> t -> test_fraction:float -> t * t

(** [partition t ~parts] — IID round-robin partition into [parts]
    client-local datasets. *)
val partition : t -> parts:int -> t array

(** [partition_dirichlet drbg t ~parts ~alpha] — non-IID partition: for
    each class, the per-client proportions are drawn from Dir(α·1).
    Small α (e.g. 0.1) gives highly skewed client distributions — the
    standard federated-learning heterogeneity benchmark. Every client is
    guaranteed at least one sample. *)
val partition_dirichlet : Prng.Drbg.t -> t -> parts:int -> alpha:float -> t array

(** [relabel t ~from_class ~to_class] — the label-flip attack's data-level
    poisoning: every [from_class] sample becomes [to_class]. *)
val relabel : t -> from_class:int -> to_class:int -> t
