type defense_kind = D_l2 | D_sphere | D_cosine of float

type checker = Np_nc | Np_sc of defense_kind | Risefl of defense_kind * int

type config = {
  n_clients : int;
  n_malicious : int;
  attack : Attack.t;
  checker : checker;
  rounds : int;
  lr : float;
  batch : int option;
  arch : Model.arch;
  bound_factor : float;
  non_iid_alpha : float option;
  seed : string;
}

type round_log = { round : int; accuracy : float; rejected : int list }
type result = { logs : round_log array; final_accuracy : float }

let median a =
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  if n = 0 then 0.0 else if n land 1 = 1 then s.(n / 2) else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))

let build_predicate kind ~bound ~reference =
  match kind with
  | D_l2 -> Defense.L2 bound
  | D_sphere -> Defense.Sphere (reference, bound)
  | D_cosine alpha -> Defense.Cosine (reference, bound, alpha)

let train config ~data =
  if config.n_malicious > config.n_clients then invalid_arg "Federated.train";
  let root = Prng.Drbg.create_string config.seed in
  let data_rng = Prng.Drbg.fork root "data" in
  let train_set, test_set = Dataset.split data_rng data ~test_fraction:0.2 in
  let parts =
    match config.non_iid_alpha with
    | None -> Dataset.partition train_set ~parts:config.n_clients
    | Some alpha -> Dataset.partition_dirichlet data_rng train_set ~parts:config.n_clients ~alpha
  in
  (* the malicious clients poison their local data where the attack is
     data-level (label flip) *)
  let parts =
    Array.mapi
      (fun i part -> if i < config.n_malicious then Attack.poison_data config.attack part else part)
      parts
  in
  let model =
    Model.create (Prng.Drbg.fork root "init") config.arch ~n_features:data.Dataset.n_features
      ~n_classes:data.Dataset.n_classes
  in
  let d = Model.n_params model in
  let eps = 2.0 ** -128.0 in
  (* bound auto-calibration state; fixed after round 1 *)
  let bound = ref 0.0 in
  let reference = ref (Array.make d 0.0) in
  let logs =
    Array.init config.rounds (fun r ->
        let round_rng = Prng.Drbg.fork root (Printf.sprintf "round%d" r) in
        let updates =
          Array.mapi
            (fun i part ->
              let g =
                Model.gradient model part ~batch:config.batch
                  (Prng.Drbg.fork round_rng (Printf.sprintf "grad%d" i))
              in
              if i < config.n_malicious then
                Attack.poison_update config.attack
                  (Prng.Drbg.fork round_rng (Printf.sprintf "atk%d" i))
                  g
              else g)
            parts
        in
        (* calibrate B on the first round's honest-update norms (the
           deployment would fix B offline the same way) *)
        if r = 0 then begin
          let honest_norms =
            Array.init (config.n_clients - config.n_malicious) (fun i ->
                Defense.norm updates.(config.n_malicious + i))
          in
          bound := config.bound_factor *. median honest_norms
        end;
        let predicate () = build_predicate (match config.checker with
          | Np_sc k | Risefl (k, _) -> k
          | Np_nc -> D_l2) ~bound:!bound ~reference:!reference
        in
        let rejected = ref [] in
        (* the protocol samples ONE projection matrix per round (from the
           shared seed) used against every client *)
        let projections =
          match config.checker with
          | Risefl (_, k) ->
              Some (Defense.sample_projections ~k ~eps (Prng.Drbg.fork round_rng "check") ~d)
          | Np_nc | Np_sc _ -> None
        in
        let accepted =
          Array.to_list
            (Array.mapi
               (fun i u ->
                 let ok =
                   match (config.checker, projections) with
                   | Np_nc, _ -> true
                   | Np_sc _, _ -> Defense.strict (predicate ()) u
                   | Risefl _, Some prj -> Defense.probabilistic_with prj (predicate ()) u
                   | Risefl _, None -> assert false
                 in
                 if not ok then rejected := (i + 1) :: !rejected;
                 (ok, u))
               updates)
          |> List.filter fst |> List.map snd
        in
        let n_acc = List.length accepted in
        let agg = Array.make d 0.0 in
        List.iter (fun u -> Array.iteri (fun l v -> agg.(l) <- agg.(l) +. v) u) accepted;
        if n_acc > 0 then begin
          let scale = 1.0 /. float_of_int n_acc in
          Array.iteri (fun l v -> agg.(l) <- v *. scale) agg;
          Model.step model agg ~lr:config.lr;
          (* sphere/cosine reference direction: the previous global update *)
          reference := Array.copy agg
        end;
        { round = r + 1; accuracy = Model.accuracy model test_set; rejected = List.rev !rejected })
  in
  { logs; final_accuracy = (if config.rounds = 0 then 0.0 else logs.(config.rounds - 1).accuracy) }
