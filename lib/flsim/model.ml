type arch = Softmax | Mlp of int

(* Parameters live in one flat array; layer views are computed offsets.
   Softmax: W (classes x features) then b (classes).
   MLP:     W1 (hidden x features), b1 (hidden), W2 (classes x hidden),
            b2 (classes). *)
type t = {
  arch : arch;
  n_features : int;
  n_classes : int;
  theta : float array;
}

let n_params_of arch ~n_features ~n_classes =
  match arch with
  | Softmax -> (n_classes * n_features) + n_classes
  | Mlp h -> (h * n_features) + h + (n_classes * h) + n_classes

let create drbg arch ~n_features ~n_classes =
  let n = n_params_of arch ~n_features ~n_classes in
  let scale = 1.0 /. sqrt (float_of_int n_features) in
  { arch; n_features; n_classes; theta = Array.init n (fun _ -> scale *. Prng.Drbg.gaussian drbg) }

let n_params t = Array.length t.theta
let params t = Array.copy t.theta

let set_params t p =
  if Array.length p <> Array.length t.theta then invalid_arg "Model.set_params";
  Array.blit p 0 t.theta 0 (Array.length p)

let step t update ~lr =
  if Array.length update <> Array.length t.theta then invalid_arg "Model.step";
  Array.iteri (fun i g -> t.theta.(i) <- t.theta.(i) -. (lr *. g)) update

let softmax logits =
  let m = Array.fold_left Float.max neg_infinity logits in
  let e = Array.map (fun v -> exp (v -. m)) logits in
  let s = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun v -> v /. s) e

(* forward pass producing class probabilities; for the MLP also returns
   the hidden activations needed by backprop *)
let forward t x =
  match t.arch with
  | Softmax ->
      let f = t.n_features and c = t.n_classes in
      let logits =
        Array.init c (fun k ->
            let off = k * f in
            let acc = ref t.theta.((c * f) + k) in
            for j = 0 to f - 1 do
              acc := !acc +. (t.theta.(off + j) *. x.(j))
            done;
            !acc)
      in
      (softmax logits, [||])
  | Mlp h ->
      let f = t.n_features and c = t.n_classes in
      let w1 = 0 and b1 = h * f in
      let w2 = b1 + h and b2 = b1 + h + (c * h) in
      let hidden =
        Array.init h (fun u ->
            let off = w1 + (u * f) in
            let acc = ref t.theta.(b1 + u) in
            for j = 0 to f - 1 do
              acc := !acc +. (t.theta.(off + j) *. x.(j))
            done;
            tanh !acc)
      in
      let logits =
        Array.init c (fun k ->
            let off = w2 + (k * h) in
            let acc = ref t.theta.(b2 + k) in
            for u = 0 to h - 1 do
              acc := !acc +. (t.theta.(off + u) *. hidden.(u))
            done;
            !acc)
      in
      (softmax logits, hidden)

let accumulate_gradient t grad x y =
  let probs, hidden = forward t x in
  let c = t.n_classes and f = t.n_features in
  (* dL/dlogit_k = p_k - [k = y] *)
  let dlogit = Array.mapi (fun k p -> p -. if k = y then 1.0 else 0.0) probs in
  match t.arch with
  | Softmax ->
      for k = 0 to c - 1 do
        let off = k * f in
        let dk = dlogit.(k) in
        if dk <> 0.0 then
          for j = 0 to f - 1 do
            grad.(off + j) <- grad.(off + j) +. (dk *. x.(j))
          done;
        grad.((c * f) + k) <- grad.((c * f) + k) +. dk
      done
  | Mlp h ->
      let w1 = 0 and b1 = h * f in
      let w2 = b1 + h and b2 = b1 + h + (c * h) in
      (* output layer *)
      for k = 0 to c - 1 do
        let off = w2 + (k * h) in
        let dk = dlogit.(k) in
        for u = 0 to h - 1 do
          grad.(off + u) <- grad.(off + u) +. (dk *. hidden.(u))
        done;
        grad.(b2 + k) <- grad.(b2 + k) +. dk
      done;
      (* hidden layer: dL/dh_u = sum_k dlogit_k W2[k][u]; tanh' = 1 - h^2 *)
      for u = 0 to h - 1 do
        let dh = ref 0.0 in
        for k = 0 to c - 1 do
          dh := !dh +. (dlogit.(k) *. t.theta.(w2 + (k * h) + u))
        done;
        let da = !dh *. (1.0 -. (hidden.(u) *. hidden.(u))) in
        if da <> 0.0 then begin
          let off = w1 + (u * f) in
          for j = 0 to f - 1 do
            grad.(off + j) <- grad.(off + j) +. (da *. x.(j))
          done;
          grad.(b1 + u) <- grad.(b1 + u) +. da
        end
      done

let gradient t (data : Dataset.t) ~batch drbg =
  let n = Array.length data.Dataset.y in
  if n = 0 then invalid_arg "Model.gradient: empty dataset";
  let grad = Array.make (Array.length t.theta) 0.0 in
  let indices =
    match batch with
    | None -> Array.init n Fun.id
    | Some b -> Array.init (Stdlib.min b n) (fun _ -> Prng.Drbg.uniform_int drbg n)
  in
  Array.iter (fun i -> accumulate_gradient t grad data.Dataset.x.(i) data.Dataset.y.(i)) indices;
  let scale = 1.0 /. float_of_int (Array.length indices) in
  Array.map (fun g -> g *. scale) grad

let accuracy t (data : Dataset.t) =
  let n = Array.length data.Dataset.y in
  if n = 0 then 0.0
  else begin
    let correct = ref 0 in
    Array.iteri
      (fun i x ->
        let probs, _ = forward t x in
        let best = ref 0 in
        Array.iteri (fun k p -> if p > probs.(!best) then best := k) probs;
        if !best = data.Dataset.y.(i) then incr correct)
      data.Dataset.x;
    float_of_int !correct /. float_of_int n
  end

let loss t (data : Dataset.t) =
  let n = Array.length data.Dataset.y in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iteri
      (fun i x ->
        let probs, _ = forward t x in
        acc := !acc -. log (Float.max 1e-12 probs.(data.Dataset.y.(i))))
      data.Dataset.x;
    !acc /. float_of_int n
  end
