(* Seeded k-regular neighborhood graph for the commit stage. See the
   .mli for the construction; everything here is a pure function of
   (seed, round, cohort, degree) so all parties agree without
   communication and WAL replay re-derives the same graph. *)

type mode = Full | Kregular of int

let mode_to_string = function
  | Full -> "full"
  | Kregular k -> Printf.sprintf "kregular:%d" k

let mode_of_string s =
  match s with
  | "full" -> Some Full
  | "kregular" -> Some (Kregular 0)
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "kregular" -> (
          let tail = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt tail with
          | Some k when k >= 0 -> Some (Kregular k)
          | _ -> None)
      | _ -> None)

type t = {
  n : int;
  round : int;
  degree : int; (* effective: clamped, odd-bumped *)
  ids : int array; (* cohort ids, ascending *)
  adj : (int, int array) Hashtbl.t; (* id -> sorted neighbor ids *)
  digest : Bytes.t;
}

let degree t = t.degree
let threshold t = (t.degree / 2) + 1
let n t = t.n
let round t = t.round
let cohort t = Array.copy t.ids
let digest t = Bytes.copy t.digest

let hex_digest t =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.init 32 (Bytes.get_uint8 t.digest)))

let neighbors t id =
  match Hashtbl.find_opt t.adj id with
  | Some a -> Array.copy a
  | None -> invalid_arg (Printf.sprintf "Topology.neighbors: id %d not in cohort" id)

let is_neighbor t a b =
  a <> b
  &&
  match Hashtbl.find_opt t.adj a with
  | Some ns -> Array.exists (fun x -> x = b) ns
  | None -> false

(* little-endian u32, matching the wire convention in core.Serial *)
let buf_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let compute_digest ~n ~round ~degree ~ids ~adj =
  let b = Buffer.create (64 + (n * (degree + 2) * 4)) in
  Buffer.add_string b "risefl/topo/v1";
  buf_u32 b n;
  buf_u32 b round;
  buf_u32 b degree;
  Array.iter
    (fun id ->
      let ns : int array = Hashtbl.find adj id in
      buf_u32 b id;
      buf_u32 b (Array.length ns);
      Array.iter (buf_u32 b) ns)
    ids;
  Hashfn.Sha256.digest (Buffer.to_bytes b)

let make ~seed ~round ~cohort ~degree =
  let n = Array.length cohort in
  if n < 3 then invalid_arg "Topology.make: need a cohort of >= 3";
  let ids = Array.copy cohort in
  Array.sort compare ids;
  Array.iter (fun id -> if id < 1 then invalid_arg "Topology.make: ids must be >= 1") ids;
  for i = 0 to n - 2 do
    if ids.(i) = ids.(i + 1) then invalid_arg "Topology.make: duplicate id in cohort"
  done;
  (* clamp to [2, n-1]; no k-regular graph on odd n with odd k exists,
     so bump such a request to k+1 (stays <= n-1: n-1 is even there) *)
  let k = max 2 (min degree (n - 1)) in
  let k = if k land 1 = 1 && n land 1 = 1 then k + 1 else k in
  (* seeded ring: Fisher–Yates over the sorted cohort *)
  let drbg = Prng.Drbg.create_string (Printf.sprintf "%s/topo/r%d" seed round) in
  let ring = Array.copy ids in
  for i = n - 1 downto 1 do
    let j = Prng.Drbg.uniform_int drbg (i + 1) in
    let tmp = ring.(i) in
    ring.(i) <- ring.(j);
    ring.(j) <- tmp
  done;
  (* Harary H_{k,n}: circulant offsets 1..⌊k/2⌋ on the ring, plus the
     diametric offset n/2 when k is odd (then n is even). Offsets stay
     strictly below n/2 (or equal it exactly once), so every edge is
     distinct and the graph is exactly k-regular and k-connected. *)
  let h = k / 2 in
  let adj = Hashtbl.create n in
  let buckets = Array.make n [] in
  for p = 0 to n - 1 do
    for o = 1 to h do
      buckets.(p) <- ring.((p + o) mod n) :: ring.((p - o + n) mod n) :: buckets.(p)
    done;
    if k land 1 = 1 then buckets.(p) <- ring.((p + (n / 2)) mod n) :: buckets.(p)
  done;
  for p = 0 to n - 1 do
    let ns = Array.of_list buckets.(p) in
    Array.sort compare ns;
    Hashtbl.replace adj ring.(p) ns
  done;
  let digest = compute_digest ~n ~round ~degree:k ~ids ~adj in
  { n; round; degree = k; ids; adj; digest }

let plan ~mode ~seed ~round ~cohort =
  match mode with
  | Full -> None
  | Kregular degree ->
      let n = Array.length cohort in
      (* normalize on the RAW degree, before the odd bump, so both ends
         of a connection pick the same branch *)
      if n <= 2 || max 2 degree >= n - 1 then None
      else Some (make ~seed ~round ~cohort ~degree)

(* --- security calculation ------------------------------------------- *)

let ln_choose k j =
  Stats.Special.ln_gamma (float_of_int (k + 1))
  -. Stats.Special.ln_gamma (float_of_int (j + 1))
  -. Stats.Special.ln_gamma (float_of_int (k - j + 1))

(* ln P[X = j] for X ~ Binom(k, p) *)
let ln_pmf k p j =
  if p <= 0.0 then if j = 0 then 0.0 else neg_infinity
  else if p >= 1.0 then if j = k then 0.0 else neg_infinity
  else ln_choose k j +. (float_of_int j *. log p) +. (float_of_int (k - j) *. log (1.0 -. p))

let ln_sum_exp = function
  | [] -> neg_infinity
  | xs ->
      let m = List.fold_left max neg_infinity xs in
      if m = neg_infinity then neg_infinity
      else m +. log (List.fold_left (fun acc x -> acc +. exp (x -. m)) 0.0 xs)

(* ln P[X < t] and ln P[X >= t] *)
let ln_tail_lt k p t = ln_sum_exp (List.init (max 0 t) (ln_pmf k p))
let ln_tail_ge k p t = ln_sum_exp (List.init (max 0 (k - t + 1)) (fun i -> ln_pmf k p (t + i)))

let recommend_degree ~n ~dropout ~corruption ~sigma =
  if n < 2 then invalid_arg "Topology.recommend_degree: n >= 2";
  if dropout < 0.0 || dropout >= 1.0 then invalid_arg "Topology.recommend_degree: 0 <= dropout < 1";
  if corruption < 0.0 || corruption >= 1.0 then
    invalid_arg "Topology.recommend_degree: 0 <= corruption < 1";
  if sigma <= 0 then invalid_arg "Topology.recommend_degree: sigma > 0";
  let target = -.(float_of_int sigma *. log 2.0) in
  let p_alive_honest = (1.0 -. dropout) *. (1.0 -. corruption) in
  let ok k =
    let t = (k / 2) + 1 in
    ln_tail_lt k p_alive_honest t <= target && ln_tail_ge k corruption t <= target
  in
  let rec search k = if k >= n - 1 then n - 1 else if ok k then k else search (k + 1) in
  search 2
