(** Seeded k-regular share topology (Bell et al.-style neighborhood
    secret sharing).

    The all-to-all commit stage seals one VSSS share per peer into every
    commit message, making commit traffic O(n²) per round. This module
    replaces the complete graph with a k-regular neighborhood graph,
    derived {e purely} from the round's shared seed and the active
    cohort, so every party computes the same graph independently —
    nothing about the topology is ever transmitted or logged (WAL replay
    re-derives it bit-identically).

    Construction is a Harary-style union of seeded cycles: the cohort is
    shuffled by a seeded Fisher–Yates permutation into a ring, and each
    vertex is connected to the ⌊k/2⌋ nearest ring positions on each side
    (plus the diametric vertex when k is odd and n even). The result is
    exactly k-regular (k bumped to k+1 when both k and n are odd, where
    no k-regular graph exists) and k-connected, hence connected — both
    properties are proved by the property tests, not assumed. *)

(** Which share topology a round runs under. [Kregular k] with k ≥ n−1
    (or n ≤ 2) normalizes to the full graph — see {!plan}. *)
type mode = Full | Kregular of int

val mode_to_string : mode -> string

(** [mode_of_string s] parses ["full"] / ["kregular"] / ["kregular:k"].
    Returns [None] on anything else. *)
val mode_of_string : string -> mode option

type t

(** [make ~seed ~round ~cohort ~degree] builds the round's graph over
    [cohort] (client ids, each ≥ 1, duplicate-free). [degree] is clamped
    to [2, n−1] and bumped to [degree+1] when [degree] and [n] are both
    odd. Deterministic in (seed, round, cohort, degree).
    @raise Invalid_argument if the cohort has < 3 ids or repeats one. *)
val make : seed:string -> round:int -> cohort:int array -> degree:int -> t

(** [plan ~mode ~seed ~round ~cohort] — the single normalization point:
    [Full], a cohort of ≤ 2, or a {e raw} degree ≥ n−1 yield [None]
    (callers then run the unchanged all-to-all path, which is what makes
    [--degree (n−1)] bit-identical to [--topology full] by construction);
    otherwise [Some (make ...)]. Normalization inspects the raw degree
    {e before} the odd-degree bump so both endpoints of a connection
    agree on the branch. *)
val plan : mode:mode -> seed:string -> round:int -> cohort:int array -> t option

(** Effective degree (after clamping and the odd-degree bump). *)
val degree : t -> int

(** Recovery threshold for this graph's VSSS sharing:
    ⌊degree/2⌋ + 1 — a majority of each client's neighborhood. *)
val threshold : t -> int

val n : t -> int
val round : t -> int

(** The cohort ids, ascending. *)
val cohort : t -> int array

(** [neighbors t id] — the sorted ids adjacent to [id].
    @raise Invalid_argument if [id] is not in the cohort. *)
val neighbors : t -> int -> int array

(** [is_neighbor t a b] — adjacency test ([false] when [a = b]). *)
val is_neighbor : t -> int -> int -> bool

(** 32-byte SHA-256 over a canonical adjacency encoding (header, n,
    round, degree, then each id ascending with its sorted neighbor
    list). Commit messages carry it so the server can reject a client
    that computed a different graph. *)
val digest : t -> Bytes.t

val hex_digest : t -> string

(** [recommend_degree ~n ~dropout ~corruption ~sigma] — the security
    calculation of Bell et al. adapted to this recovery rule: the
    smallest k such that, with per-neighbor dropout rate δ = [dropout]
    and corruption rate γ = [corruption], both
    {ul
    {- P[Binom(k, (1−δ)(1−γ)) < ⌊k/2⌋+1] ≤ 2⁻ˢ — enough alive honest
       neighbors survive to recover a dropout's seed, and}
    {- P[Binom(k, γ) ≥ ⌊k/2⌋+1] ≤ 2⁻ˢ — the corrupt coalition cannot
       reach the threshold inside any one neighborhood}}
    hold, computed with log-space binomial tails (no underflow out to
    σ = 128). Returns n−1 (all-to-all) when no smaller k satisfies
    both — e.g. when γ ≥ 1/2 no majority threshold can be safe.
    @raise Invalid_argument unless n ≥ 2, 0 ≤ δ < 1, 0 ≤ γ < 1,
    σ > 0. *)
val recommend_degree : n:int -> dropout:float -> corruption:float -> sigma:int -> int
