(** Verifiable Shamir secret sharing (t-out-of-n) over ℤ_ℓ with
    Feldman-style check strings, exactly the SS.Share / SS.Verify /
    SS.Recover triple of §2 of the paper.

    The check string Ψ = (g^r, g^{f_1}, …, g^{f_{t−1}}) exposes g^r; this
    is safe here because the only secrets shared through this module are
    the {e uniformly random} Pedersen blinds r_i — never the (short,
    guessable) model updates. That division of labour is the paper's
    hybrid commitment scheme (§4.3 and footnote 3).

    Both shares and check strings are additively homomorphic, which is
    what makes the secure-aggregation round (§4.5) work. *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type share = { idx : int  (** evaluation point, in [1, n] *); value : Scalar.t }

(** The check string; element 0 commits the secret: Ψ(0) = g^secret. *)
type check = Point.t array

(** [share drbg ~secret ~n ~t ~g] draws a random degree-(t−1) polynomial f
    with f(0) = secret and returns ([f(1) … f(n)], Ψ).
    @raise Invalid_argument unless 0 < t <= n. *)
val share : Prng.Drbg.t -> secret:Scalar.t -> n:int -> t:int -> g:Point.t -> share array * check

(** [share_at drbg ~secret ~xs ~t ~g] — like {!share} but evaluates the
    polynomial only at the given points [xs] (each ≥ 1, duplicate-free):
    the neighborhood-topology commit path shares a seed to a client's
    k graph neighbors at {e their own ids}, so shares stay
    interpolation-compatible with the all-to-all path. All [t]
    coefficients are drawn before any evaluation, so
    [share_at ~xs:[|1..n|]] is bit-identical to [share ~n].
    @raise Invalid_argument unless 0 < t ≤ |xs| and [xs] is duplicate-free
    with every point ≥ 1. *)
val share_at :
  Prng.Drbg.t -> secret:Scalar.t -> xs:int array -> t:int -> g:Point.t -> share array * check

(** [verify ~g ~check s] — SS.Verify: g^{s.value} = Π_j Ψ_j^{idx^j}. *)
val verify : g:Point.t -> check:check -> share -> bool

(** [recover shares] — Lagrange interpolation at 0. Requires at least
    [t] shares with pairwise distinct indices (not validated against the
    original [t]; fewer shares silently reconstruct garbage, as in any
    Shamir scheme).
    @raise Invalid_argument on duplicate or empty input. *)
val recover : share list -> Scalar.t

(** [commitment_of_check c] = Ψ(0) = g^secret (the [z_i] of §4.3). *)
val commitment_of_check : check -> Point.t

(** Homomorphic combination: [add_shares a b] requires equal indices. *)
val add_shares : share -> share -> share

(** [add_checks a b] multiplies check strings element-wise. *)
val add_checks : check -> check -> check
