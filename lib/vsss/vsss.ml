module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Msm = Curve25519.Msm

type share = { idx : int; value : Scalar.t }
type check = Point.t array

(* Horner evaluation of the share polynomial at a small point x. *)
let eval_poly coeffs x =
  let acc = ref Scalar.zero in
  for j = Array.length coeffs - 1 downto 0 do
    acc := Scalar.add (Scalar.mul_small !acc x) coeffs.(j)
  done;
  !acc

let share_at drbg ~secret ~xs ~t ~g =
  let n = Array.length xs in
  if t <= 0 || t > n then invalid_arg "Vsss.share_at: need 0 < t <= |xs|";
  Array.iter (fun x -> if x < 1 then invalid_arg "Vsss.share_at: points must be >= 1") xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  for i = 0 to n - 2 do
    if sorted.(i) = sorted.(i + 1) then invalid_arg "Vsss.share_at: duplicate evaluation point"
  done;
  (* all coefficients are drawn before any evaluation, so for
     xs = [|1..n|] the DRBG stream — and hence every byte of the output —
     is identical to the historical [share] below *)
  let coeffs = Array.init t (fun j -> if j = 0 then secret else Scalar.random drbg) in
  let shares = Array.map (fun x -> { idx = x; value = eval_poly coeffs x }) xs in
  let check = Array.map (fun c -> Point.mul c g) coeffs in
  (shares, check)

let share drbg ~secret ~n ~t ~g =
  if t <= 0 || t > n then invalid_arg "Vsss.share: need 0 < t <= n";
  share_at drbg ~secret ~xs:(Array.init n (fun i -> i + 1)) ~t ~g

let verify ~g ~check s =
  if s.idx <= 0 || Array.length check = 0 then false
  else begin
    (* g^{f(i)} = prod_j Psi_j^{i^j}; exponents i^j grow to full scalar
       width for large j, so use the generic MSM *)
    let x = Scalar.of_int s.idx in
    let pow = ref Scalar.one in
    let pairs =
      Array.map
        (fun psi ->
          let e = !pow in
          pow := Scalar.mul !pow x;
          (e, psi))
        check
    in
    Point.equal (Point.mul s.value g) (Msm.msm pairs)
  end

let commitment_of_check c =
  if Array.length c = 0 then invalid_arg "Vsss.commitment_of_check";
  c.(0)

let add_shares a b =
  if a.idx <> b.idx then invalid_arg "Vsss.add_shares: index mismatch";
  { a with value = Scalar.add a.value b.value }

let add_checks a b =
  if Array.length a <> Array.length b then invalid_arg "Vsss.add_checks: length mismatch";
  Array.map2 Point.add a b

let recover shares =
  match shares with
  | [] -> invalid_arg "Vsss.recover: no shares"
  | _ ->
      let idxs = List.map (fun s -> s.idx) shares in
      let distinct = List.sort_uniq compare idxs in
      if List.length distinct <> List.length idxs then invalid_arg "Vsss.recover: duplicate shares";
      (* secret = sum_i lambda_i * y_i, lambda_i = prod_{j<>i} x_j / (x_j - x_i) *)
      List.fold_left
        (fun acc s ->
          let num, den =
            List.fold_left
              (fun (num, den) s' ->
                if s'.idx = s.idx then (num, den)
                else
                  ( Scalar.mul_small num s'.idx,
                    Scalar.mul den (Scalar.of_int (s'.idx - s.idx)) ))
              (Scalar.one, Scalar.one) shares
          in
          let lambda = Scalar.mul num (Scalar.inv den) in
          Scalar.add acc (Scalar.mul lambda s.value))
        Scalar.zero shares
