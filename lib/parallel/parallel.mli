(** A small dependency-free multicore execution layer.

    A global pool of worker {!Domain}s executes chunked data-parallel
    regions. The pool is sized lazily: no domain is ever spawned until a
    region actually requests more than one job, so single-threaded runs
    (and [jobs = 1] test configurations) never pay domain startup.

    Determinism guarantee: every combinator assigns work by index, writes
    results by index, and combines partial results in ascending chunk
    order. For pure element functions the output is therefore identical
    for every job count — only wall-clock changes. Group-valued
    reductions (e.g. partial MSM sums) combine in a fixed order too, so
    the reduced value is the same group element regardless of [jobs]
    (projective representations may differ; compressed encodings do not).

    Nested parallel regions degrade to sequential execution instead of
    deadlocking: a region started from inside a worker task runs inline. *)

(** [default_jobs ()] — the job count used when [?jobs] is omitted.
    Initialized from the [RISEFL_JOBS] environment variable when set (and
    >= 1), otherwise [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [set_default_jobs j] overrides {!default_jobs} (clamped to >= 1).
    Used by the bench harness's [--jobs] flag and the CLI. *)
val set_default_jobs : int -> unit

(** [parallel_for ?jobs ?min_chunk ~lo ~hi f] — split the index range
    [\[lo, hi)] into chunks and run [f clo chi] for each sub-range
    [\[clo, chi)]. [f] must only write to disjoint, per-index state.
    [min_chunk] (default 1) is a sequential cutoff: the chunk count is
    capped so no chunk holds fewer than [min_chunk] elements, so small
    inputs never fan out across domains when per-chunk fixed costs would
    dominate. *)
val parallel_for : ?jobs:int -> ?min_chunk:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** [map_chunks ?jobs ?min_chunk ~n f] — split [\[0, n)] into chunks,
    compute [f clo chi] per chunk, and return the per-chunk results in
    ascending chunk order. The chunking depends only on [n], [min_chunk]
    and the effective job count. [min_chunk] as in {!parallel_for}. *)
val map_chunks : ?jobs:int -> ?min_chunk:int -> n:int -> (int -> int -> 'a) -> 'a array

(** [chunk_count ?jobs ?min_chunk n] — the number of chunks
    {!map_chunks} / {!parallel_for} would use for an [n]-element input;
    exposed so callers whose per-chunk setup depends on the chunk size
    (e.g. Pippenger window selection) can agree with the layout. *)
val chunk_count : ?jobs:int -> ?min_chunk:int -> int -> int

(** [parallel_init ?jobs n f] — like [Array.init n f] with the element
    functions evaluated in parallel. [f] must be pure (or touch only
    per-index state). *)
val parallel_init : ?jobs:int -> int -> (int -> 'a) -> 'a array

(** [parallel_map ?jobs f xs] — like [Array.map], in parallel. *)
val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_mapi ?jobs f xs] — like [Array.mapi], in parallel. *)
val parallel_mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [parallel_reduce ?jobs ~map ~combine ~init xs] — map every element
    and combine [init] with the per-chunk partials in ascending chunk
    order: [combine] should be associative for the result to be
    job-count independent. *)
val parallel_reduce :
  ?jobs:int -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b

(** [tree_combine f xs] — combine [xs] pairwise ([log (length xs)]
    rounds, fixed order); [Invalid_argument] on an empty array. Used to
    merge per-domain partial MSM sums. *)
val tree_combine : ('a -> 'a -> 'a) -> 'a array -> 'a
