(* Domain pool + chunked data-parallel combinators.

   Workers are spawned lazily, once, and never torn down: they block on a
   condition variable between regions, so an idle pool costs nothing but
   memory. Work inside a region is distributed by an atomic chunk
   counter (work stealing at chunk granularity), which keeps load
   balanced even when chunk costs are skewed, while results are always
   written / combined by chunk index so the output is independent of the
   interleaving. *)

let clamp_jobs j = if j < 1 then 1 else j

let initial_jobs =
  match Sys.getenv_opt "RISEFL_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let current_jobs = Atomic.make initial_jobs
let default_jobs () = Atomic.get current_jobs
let set_default_jobs j = Atomic.set current_jobs (clamp_jobs j)

(* --- the pool --- *)

type pool = {
  lock : Mutex.t;
  nonempty : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable spawned : int;
}

let pool = { lock = Mutex.create (); nonempty = Condition.create (); tasks = Queue.create (); spawned = 0 }

(* true inside a worker task (and inside the main domain's own share of a
   region): a nested region must run inline rather than re-enter the
   pool, which could otherwise deadlock on the completion latch. *)
let inside_region = Domain.DLS.new_key (fun () -> false)

let worker_loop () =
  Domain.DLS.set inside_region true;
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.tasks do
      Condition.wait pool.nonempty pool.lock
    done;
    let task = Queue.pop pool.tasks in
    Mutex.unlock pool.lock;
    task ();
    loop ()
  in
  loop ()

let ensure_workers n =
  Mutex.lock pool.lock;
  let missing = n - pool.spawned in
  if missing > 0 then pool.spawned <- n;
  Mutex.unlock pool.lock;
  for _ = 1 to missing do
    ignore (Domain.spawn worker_loop)
  done

let submit task =
  Mutex.lock pool.lock;
  Queue.push task pool.tasks;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.lock

(* Run [f 0 .. f (nchunks-1)], distributing chunks over [jobs] domains
   (the caller counts as one). Exceptions re-raise in the caller; the
   first one wins, remaining chunks still drain (cheaply: losers just
   bump the counter). *)
let run_chunks ~jobs nchunks f =
  let jobs = clamp_jobs jobs in
  if jobs = 1 || nchunks <= 1 || Domain.DLS.get inside_region then
    for i = 0 to nchunks - 1 do
      f i
    done
  else begin
    let helpers = min (jobs - 1) (nchunks - 1) in
    ensure_workers helpers;
    let next = Atomic.make 0 in
    let err = Atomic.make None in
    let drain () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < nchunks then begin
          (if Atomic.get err = None then
             try f i with e -> ignore (Atomic.compare_and_set err None (Some e)));
          go ()
        end
      in
      go ()
    in
    let pending = Atomic.make helpers in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    for _ = 1 to helpers do
      submit (fun () ->
          drain ();
          Mutex.lock done_lock;
          (* decrement under the lock so the caller cannot miss the last
             signal between its check and its wait *)
          ignore (Atomic.fetch_and_add pending (-1));
          Condition.signal done_cond;
          Mutex.unlock done_lock)
    done;
    (* the caller participates too, flagged so nested regions inline *)
    Domain.DLS.set inside_region true;
    drain ();
    Domain.DLS.set inside_region false;
    Mutex.lock done_lock;
    while Atomic.get pending > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    match Atomic.get err with Some e -> raise e | None -> ()
  end

(* Chunk layout: at most [4 * jobs] chunks (oversubscription smooths
   skewed per-element costs), sized as evenly as possible, fixed by
   [n], [jobs] and [min_chunk] alone so partial-result order is
   reproducible. [min_chunk] is the sequential cutoff: the chunk count
   is capped so every chunk holds at least that many elements, which
   keeps small inputs from fanning out across domains when the
   per-chunk fixed costs (domain wakeup, per-chunk setup such as a
   Pippenger bucket pass) would dominate the useful work. *)
let target_chunks ~jobs ~min_chunk n =
  if n <= 0 then 0
  else begin
    let jobs = clamp_jobs jobs in
    if jobs = 1 then 1
    else begin
      let cap = if min_chunk <= 1 then n else Stdlib.max 1 (n / min_chunk) in
      Stdlib.max 1 (Stdlib.min (Stdlib.min n (4 * jobs)) cap)
    end
  end

let chunks_of ~jobs ~min_chunk n =
  let target = target_chunks ~jobs ~min_chunk n in
  if target = 0 then [||]
  else begin
    let base = n / target and extra = n mod target in
    let bounds = Array.make target (0, 0) in
    let lo = ref 0 in
    for c = 0 to target - 1 do
      let len = base + if c < extra then 1 else 0 in
      bounds.(c) <- (!lo, !lo + len);
      lo := !lo + len
    done;
    bounds
  end

let resolve_jobs jobs = match jobs with Some j -> clamp_jobs j | None -> default_jobs ()

let chunk_count ?jobs ?(min_chunk = 1) n = target_chunks ~jobs:(resolve_jobs jobs) ~min_chunk n

let parallel_for ?jobs ?(min_chunk = 1) ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then begin
    let jobs = resolve_jobs jobs in
    let bounds = chunks_of ~jobs ~min_chunk n in
    run_chunks ~jobs (Array.length bounds) (fun c ->
        let clo, chi = bounds.(c) in
        f (lo + clo) (lo + chi))
  end

let map_chunks ?jobs ?(min_chunk = 1) ~n f =
  if n <= 0 then [||]
  else begin
    let jobs = resolve_jobs jobs in
    let bounds = chunks_of ~jobs ~min_chunk n in
    let out = Array.make (Array.length bounds) None in
    run_chunks ~jobs (Array.length bounds) (fun c ->
        let clo, chi = bounds.(c) in
        out.(c) <- Some (f clo chi));
    Array.map (function Some v -> v | None -> assert false) out
  end

(* Per-chunk sub-arrays concatenated in chunk order: no placeholder
   element is ever needed, and the result layout is independent of which
   domain ran which chunk. *)
let parallel_init ?jobs n f =
  if n < 0 then invalid_arg "Parallel.parallel_init";
  let parts = map_chunks ?jobs ~n (fun lo hi -> Array.init (hi - lo) (fun i -> f (lo + i))) in
  Array.concat (Array.to_list parts)

let parallel_mapi ?jobs f xs =
  let n = Array.length xs in
  let parts =
    map_chunks ?jobs ~n (fun lo hi -> Array.init (hi - lo) (fun i -> f (lo + i) xs.(lo + i)))
  in
  Array.concat (Array.to_list parts)

let parallel_map ?jobs f xs = parallel_mapi ?jobs (fun _ x -> f x) xs

let parallel_reduce ?jobs ~map ~combine ~init xs =
  let n = Array.length xs in
  if n = 0 then init
  else begin
    let partials =
      map_chunks ?jobs ~n (fun lo hi ->
          let acc = ref (map xs.(lo)) in
          for i = lo + 1 to hi - 1 do
            acc := combine !acc (map xs.(i))
          done;
          !acc)
    in
    Array.fold_left combine init partials
  end

let tree_combine f xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Parallel.tree_combine: empty";
  let buf = Array.copy xs in
  let live = ref n in
  while !live > 1 do
    let half = !live / 2 in
    for i = 0 to half - 1 do
      buf.(i) <- f buf.(2 * i) buf.((2 * i) + 1)
    done;
    if !live land 1 = 1 then begin
      buf.(half) <- buf.(!live - 1);
      live := half + 1
    end
    else live := half
  done;
  buf.(0)
