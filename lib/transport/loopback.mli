(** The socket-backed implementation of {!Netsim.Transport_intf.S}.

    Every {!send} carries its frame through a {e real} kernel socketpair:
    the frame is enveloped (sender id + bytes), length-prefixed
    ({!Frame.encode}), written in seeded random-sized chunks (down to one
    byte — a built-in slow-loris), read back non-blocking, reassembled
    through the capped {!Frame.Reassembler}, and only then submitted to
    an inner {!Netsim} carrying the same seed, plan, script and deadline.

    Because the socket leg is byte-transparent and the fault engine is
    the same seeded Netsim, every outcome — fault schedules, dropouts,
    C*, aggregates — is bit-identical to running the plain Netsim
    backend, while the kernel-socket framing path (partial reads, short
    writes, frame boundaries) gets exercised for real. The
    degradation/dropout suites run unchanged over either backend. *)

include Netsim.Transport_intf.S

val socket_frames : t -> int
(** Frames that completed reassembly off the socketpair (diagnostics:
    equals the inner transport's [sent] counter). *)
