(** The CLI's synthetic per-round update derivation, shared between the
    in-process [round] subcommand and the [serve]/[client] processes so a
    remote run is bit-identical to its in-process twin on the same seed.

    Deterministic in (seed, round); round 1 keeps the historical
    [seed ^ "/updates"] label so existing seeds reproduce. Attackers'
    vectors are re-scaled to 50× the bound (the §5.1 scaling attack). *)

val make :
  n:int -> d:int -> bound:float -> seed:string -> attackers:int list -> round:int ->
  int array array

val behaviours : n:int -> attackers:int list -> Risefl_core.Driver.behaviour array
(** Honest everywhere except [Oversized 50.0] for the attackers. *)
