(** Socket-protocol envelopes: everything that crosses a connection.

    Each message travels as one {!Frame} body: a u8 tag followed by the
    tag's fields, written with the same {!Risefl_core.Serial} primitives
    (and the same totality discipline) as the protocol messages — the
    decoder returns [Ok]/[Error] on any byte string and never allocates
    from an unvalidated count.

    Client → server: [Hello] (register/re-register a client id after
    connect or reconnect), [Submit] (one ARQ frame — the
    [Serial.encode_framed] bytes, exactly what the in-process reliable
    layer puts on its links), [Reveal_resp], [Bye].

    Server → client: [Hello_ok], [Ack] (write-ahead acknowledged — the
    frame is in the WAL), the four round broadcasts ([Commits], [Cleared],
    [Check], [Honest]), [Reveal_req], [Result], and a best-effort [Reject]
    sent before the server closes a violating connection.

    Versioning: [Hello] and [Hello_ok] end in an {e optional} tail that a
    v0 (pre-versioning) peer simply never reads or writes — a 9-byte
    Hello body is a valid legacy v0 hello ([version = 0]). A server
    running a k-regular share topology requires [version >= 2] (the
    revision that understands wire-v2 commits and the recovery
    sub-exchange) and cleanly [Reject]s older clients. The [Hello_ok]
    tail also announces the session's topology degree (0 = all-to-all)
    so the client derives the identical graph.

    Elastic membership (v3): the [Hello] tail grows the client's last
    applied membership epoch plus a rejoin flag (re-enrolling after an
    absence), and the [Hello_ok] tail grows the server's current epoch
    (0 = static membership). A churn-enabled server requires
    [version >= 3]; a client whose epoch is stale gets the typed
    [Reject_stale] — fast-forward the locally derivable epochs (the
    churn schedule is a pure function of the session seed, so no
    membership bytes cross the wire) and re-enroll under backoff.

    The k-regular recovery sub-exchange: when an agg-stage dropout's
    blind must be re-interpolated, the server sends [Recover_req] to each
    alive graph neighbor, which answers [Recover_resp] with its stored
    VSSS share of the dropout's blind (None if it never verified) and the
    pairwise aggregation mask toward the dropout. *)

(** The protocol revision this build speaks. *)
val proto_version : int

module Scalar = Curve25519.Scalar

(** A round verdict as broadcast to clients (a compact view of
    {!Risefl_core.Driver.round_outcome} — timing stats stay server-side). *)
type result_view =
  | Rv_completed of { cstar : int list; aggregate : int array option }
  | Rv_aborted_quorum of { stage : string; survivors : int; needed : int }
  | Rv_aborted_decode of int list

type msg =
  | Hello of { client_id : int; resume_round : int; version : int; epoch : int; rejoin : bool }
  | Submit of Bytes.t
  | Reveal_resp of { dealer : int; shares : (int * Scalar.t) list option }
  | Bye
  | Hello_ok of { n : int; round : int; version : int; degree : int; epoch : int }
  | Ack of { round : int; stage : Netsim.stage; sender : int; seq : int }
  | Commits of { round : int; commits : Bytes.t array }
  | Cleared of { round : int; shares : (int * int * Scalar.t) list }
  | Check of { round : int; bcast : Bytes.t }
  | Honest of { round : int; honest : int list; malicious : int list }
  | Reveal_req of { dealer : int; requests : int list }
  | Result of { round : int; view : result_view }
  | Reject of { reason : string }
  | Recover_req of { round : int; dropout : int }
  | Recover_resp of { round : int; dropout : int; share : Scalar.t option; mask : Scalar.t }
  | Reject_stale of { current_round : int; reason : string }
      (** typed stale-epoch rejection: fast-forward and re-enroll *)

val encode : msg -> Bytes.t
(** The frame body (not yet length-prefixed — pass through
    {!Frame.encode} to put it on the wire). *)

val decode : Bytes.t -> (msg, Risefl_core.Serial.error) result
(** Total: [Ok] or [Error] on any input, never an exception, no
    allocation from an unvalidated count. *)

val tag_name : msg -> string
