(** Dependency-free single-threaded event loop (Unix.select) for the
    server side of the socket transport.

    One listener (TCP or Unix-domain) plus any number of accepted
    connections, all non-blocking. Each connection owns a capped
    {!Frame.Reassembler} for reads and a bounded outbuffer for writes
    (backpressure: a peer that stops reading past the cap is
    disconnected, never buffered without bound). {!poll} multiplexes one
    select round and returns typed events; a framing or envelope
    violation closes the connection and surfaces as {!event.Violation} —
    it never raises out of the loop.

    [select] bounds the loop at [FD_SETSIZE] (1024) connections per
    process; the sharded-aggregation roadmap item is the path past that,
    not a thread pool. *)

(** Listen/connect address. [tcp:HOST:PORT] or [unix:PATH]. *)
type addr = Tcp of string * int | Unix_sock of string

val addr_of_string : string -> (addr, string) result
val addr_to_string : addr -> string
val sockaddr_of_addr : addr -> Unix.sockaddr

type conn

val conn_id : conn -> int option
(** The client id the peer registered with (via the server's Hello
    handling), if any. *)

val set_conn_id : conn -> int -> unit
val conn_peer : conn -> string
(** Human-readable peer address (diagnostics). *)

val conn_alive : conn -> bool

type event =
  | Accepted of conn
  | Msg of conn * Proto.msg
  | Violation of conn * string
      (** frame cap exceeded or undecodable envelope; the connection has
          been closed — the caller decides whether to convict the peer *)
  | Closed of conn  (** EOF or socket error; the peer may reconnect *)

type t

val listen : ?max_frame:int -> ?max_outbuf:int -> addr -> t
(** Bind + listen (non-blocking). [max_outbuf] (default 64 MiB) bounds
    each connection's pending write bytes — exceeding it disconnects the
    peer. An existing Unix-socket path is unlinked first.
    @raise Unix.Unix_error if the address cannot be bound. *)

val poll : t -> timeout_s:float -> event list
(** One select round: accept new connections, read what's available
    (feeding reassemblers), flush what outbuffers can write. Returns
    after [timeout_s] at the latest (earlier if anything happened). *)

val send : t -> conn -> Proto.msg -> unit
(** Enqueue (and opportunistically flush) one envelope. Silently drops
    on a dead connection; disconnects the peer on outbuffer overflow. *)

val broadcast : t -> Proto.msg -> unit
(** {!send} to every connection that has registered a client id. *)

val conn_of_id : t -> int -> conn option
(** The live registered connection for a client id, if any. *)

val close_conn : t -> conn -> unit

val drain : t -> deadline_s:float -> unit
(** Pump writes until every outbuffer is empty or the monotonic deadline
    ({!Telemetry.Clock.now_s}) passes — used before a planned crash or
    shutdown so queued broadcasts reach the peers. Incoming events in
    this window are processed into an internal queue returned by the
    next {!poll}. *)

val shutdown : t -> unit
(** Close the listener and every connection (Unix-socket path is
    unlinked). *)
