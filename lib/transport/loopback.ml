module TI = Netsim.Transport_intf
module W = Risefl_core.Serial.W
module R = Risefl_core.Serial.R

let c_bytes_out = Telemetry.Counter.make "transport.bytes.out"
let c_bytes_in = Telemetry.Counter.make "transport.bytes.in"
let c_frames_in = Telemetry.Counter.make "transport.frames.in"

type t = {
  inner : Netsim.t;
  wr : Unix.file_descr;
  rd : Unix.file_descr;
  reasm : Frame.Reassembler.t;
  chunks : Prng.Drbg.t;  (* seeded chunk sizing: deterministic fragmentation *)
  mutable completed : (int * Bytes.t) list;  (* reassembled, oldest first *)
  mutable n_frames : int;
}

let create ?plan ?link_plans ?script ?deadline ~seed () =
  let inner = Netsim.create ?plan ?link_plans ?script ?deadline ~seed () in
  let wr, rd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock wr;
  Unix.set_nonblock rd;
  let t =
    {
      inner;
      wr;
      rd;
      reasm = Frame.Reassembler.create ();
      chunks = Prng.Drbg.create_string ("loopback/" ^ seed);
      completed = [];
      n_frames = 0;
    }
  in
  (* the interface has no close (Netsim needs none); reclaim the pair's
     descriptors when the backend is collected *)
  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Gc.finalise (fun t -> close_quietly t.wr; close_quietly t.rd) t;
  t

let envelope ~sender frame =
  let b = W.create () in
  W.u32 b sender;
  W.bytes b frame;
  Buffer.to_bytes b

let parse_envelope body =
  match
    Risefl_core.Serial.total "loopback" (fun r ->
        let sender = R.u32 r in
        let frame = R.bytes r in
        R.finish r;
        (sender, frame))
      body
  with
  | Ok v -> v
  | Error e ->
      (* we wrote this envelope ourselves two calls ago: a decode failure
         here is a codec bug, not hostile input *)
      failwith ("Loopback: envelope round-trip failed: " ^ Risefl_core.Serial.error_to_string e)

(* pull whatever the kernel has for us and run it through the reassembler *)
let drain t =
  let buf = Bytes.create 4096 in
  let continue = ref true in
  while !continue do
    match Unix.read t.rd buf 0 (Bytes.length buf) with
    | 0 -> continue := false
    | n -> (
        Telemetry.Counter.add c_bytes_in n;
        match Frame.Reassembler.feed t.reasm buf ~off:0 ~len:n with
        | Error e -> failwith ("Loopback: reassembly failed: " ^ e)
        | Ok bodies ->
            List.iter
              (fun body ->
                Telemetry.Counter.incr c_frames_in;
                t.n_frames <- t.n_frames + 1;
                t.completed <- t.completed @ [ parse_envelope body ])
              bodies)
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
        continue := false
  done

let send ?(attempt = 0) t ~sender frame =
  let wire = Frame.encode (envelope ~sender frame) in
  let len = Bytes.length wire in
  let pos = ref 0 in
  while !pos < len do
    (* seeded fragmentation: 1..32-byte chunks, so every frame crosses the
       reassembler in many partial reads (including byte-at-a-time) *)
    let chunk = min (1 + Prng.Drbg.uniform_int t.chunks 32) (len - !pos) in
    (match Unix.write t.wr wire !pos chunk with
    | n ->
        Telemetry.Counter.add c_bytes_out n;
        pos := !pos + n
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
        (* kernel buffer full: make room by consuming the read side *)
        drain t);
    drain t
  done;
  (* the socketpair is in-process: finish reassembling this frame now so
     the attempt tag rides with the right Netsim submission *)
  while t.completed = [] do
    drain t
  done;
  match t.completed with
  | (env_sender, env_frame) :: rest ->
      t.completed <- rest;
      if env_sender <> sender then failwith "Loopback: sender id corrupted in flight";
      Netsim.send ~attempt t.inner ~sender env_frame
  | [] -> assert false

let deadline t = Netsim.deadline t.inner
let begin_stage t ~round ~stage = Netsim.begin_stage t.inner ~round ~stage
let note_recovered t = Netsim.note_recovered t.inner

let deliver ?deadline t =
  match deadline with
  | Some d -> Netsim.deliver ~deadline:d t.inner
  | None -> Netsim.deliver t.inner

let counters t = Netsim.counters t.inner
let socket_frames t = t.n_frames

let endpoint (t : t) : TI.endpoint =
  {
    TI.ep_begin_stage = (fun ~round ~stage -> begin_stage t ~round ~stage);
    ep_send = (fun ~attempt ~sender frame -> send ~attempt t ~sender frame);
    ep_deliver =
      (fun ~deadline ->
        match deadline with Some d -> Netsim.deliver ~deadline:d t.inner | None -> Netsim.deliver t.inner);
    ep_note_recovered = (fun () -> note_recovered t);
    ep_deadline = (fun () -> deadline t);
    ep_counters = (fun () -> counters t);
  }
