module Serial = Risefl_core.Serial
module Scalar = Curve25519.Scalar
module W = Serial.W
module R = Serial.R

(* The transport protocol revision this build speaks. v0 (unversioned)
   frames carry no version tail; v2 adds the tails below plus the
   k-regular recovery sub-exchange (tags 14/15); v3 adds elastic
   membership — the Hello epoch/rejoin tail, the Hello_ok epoch tail and
   the typed stale-epoch rejection (tag 16). Bumped with any change an
   old peer cannot safely ignore. *)
let proto_version = 3

type result_view =
  | Rv_completed of { cstar : int list; aggregate : int array option }
  | Rv_aborted_quorum of { stage : string; survivors : int; needed : int }
  | Rv_aborted_decode of int list

type msg =
  | Hello of { client_id : int; resume_round : int; version : int; epoch : int; rejoin : bool }
  | Submit of Bytes.t
  | Reveal_resp of { dealer : int; shares : (int * Scalar.t) list option }
  | Bye
  | Hello_ok of { n : int; round : int; version : int; degree : int; epoch : int }
  | Ack of { round : int; stage : Netsim.stage; sender : int; seq : int }
  | Commits of { round : int; commits : Bytes.t array }
  | Cleared of { round : int; shares : (int * int * Scalar.t) list }
  | Check of { round : int; bcast : Bytes.t }
  | Honest of { round : int; honest : int list; malicious : int list }
  | Reveal_req of { dealer : int; requests : int list }
  | Result of { round : int; view : result_view }
  | Reject of { reason : string }
  | Recover_req of { round : int; dropout : int }
  | Recover_resp of { round : int; dropout : int; share : Scalar.t option; mask : Scalar.t }
  | Reject_stale of { current_round : int; reason : string }
      (* typed: the client's membership epoch is behind the session —
         fast-forward the locally derivable epochs and re-enroll *)

let tag_name = function
  | Hello _ -> "hello"
  | Submit _ -> "submit"
  | Reveal_resp _ -> "reveal-resp"
  | Bye -> "bye"
  | Hello_ok _ -> "hello-ok"
  | Ack _ -> "ack"
  | Commits _ -> "commits"
  | Cleared _ -> "cleared"
  | Check _ -> "check"
  | Honest _ -> "honest"
  | Reveal_req _ -> "reveal-req"
  | Result _ -> "result"
  | Reject _ -> "reject"
  | Recover_req _ -> "recover-req"
  | Recover_resp _ -> "recover-resp"
  | Reject_stale _ -> "reject-stale"

(* counts inside an envelope are bounded before any per-element work: a
   hostile count fails fast instead of driving a long read loop *)
let max_count = 1_000_000

let checked_count c =
  if c < 0 || c > max_count then failwith "count out of range";
  c

let w_ints b xs =
  W.u32 b (List.length xs);
  List.iter (fun x -> W.u32 b x) xs

let r_ints r = List.init (checked_count (R.u32 r)) (fun _ -> R.u32 r)

let w_scalar b s = W.bytes b (Scalar.to_bytes s)

let r_scalar r =
  match Scalar.of_bytes_opt (R.bytes r) with
  | Some s -> s
  | None -> failwith "bad scalar"

let w_string b s = W.bytes b (Bytes.of_string s)
let r_string r = Bytes.to_string (R.bytes r)

let encode msg =
  let b = W.create () in
  (match msg with
  | Hello { client_id; resume_round; version; epoch; rejoin } ->
      W.u8 b 1;
      W.u32 b client_id;
      W.u32 b resume_round;
      (* optional tail: a v0 peer stops reading here *)
      W.u32 b version;
      (* v3 tail: last membership epoch the client has applied, plus the
         enrollment intent (re-enrolling after an absence) *)
      W.u32 b epoch;
      W.u8 b (if rejoin then 1 else 0)
  | Submit framed ->
      W.u8 b 2;
      W.bytes b framed
  | Reveal_resp { dealer; shares } ->
      W.u8 b 3;
      W.u32 b dealer;
      (match shares with
      | None -> W.u8 b 0
      | Some shares ->
          W.u8 b 1;
          W.u32 b (List.length shares);
          List.iter
            (fun (recipient, s) ->
              W.u32 b recipient;
              w_scalar b s)
            shares)
  | Bye -> W.u8 b 4
  | Hello_ok { n; round; version; degree; epoch } ->
      W.u8 b 5;
      W.u32 b n;
      W.u32 b round;
      (* optional tail: version, then the round topology degree (0 =
         all-to-all) — a v0 peer stops reading before it *)
      W.u32 b version;
      W.u32 b degree;
      (* v3 tail: the server's current membership epoch (0 = static) *)
      W.u32 b epoch
  | Ack { round; stage; sender; seq } ->
      W.u8 b 6;
      W.u32 b round;
      W.u8 b (Netsim.stage_index stage);
      W.u32 b sender;
      W.u32 b seq
  | Commits { round; commits } ->
      W.u8 b 7;
      W.u32 b round;
      W.u32 b (Array.length commits);
      Array.iter (fun c -> W.bytes b c) commits
  | Cleared { round; shares } ->
      W.u8 b 8;
      W.u32 b round;
      W.u32 b (List.length shares);
      List.iter
        (fun (flagger, dealer, s) ->
          W.u32 b flagger;
          W.u32 b dealer;
          w_scalar b s)
        shares
  | Check { round; bcast } ->
      W.u8 b 9;
      W.u32 b round;
      W.bytes b bcast
  | Honest { round; honest; malicious } ->
      W.u8 b 10;
      W.u32 b round;
      w_ints b honest;
      w_ints b malicious
  | Reveal_req { dealer; requests } ->
      W.u8 b 11;
      W.u32 b dealer;
      w_ints b requests
  | Result { round; view } -> (
      W.u8 b 12;
      W.u32 b round;
      match view with
      | Rv_completed { cstar; aggregate } ->
          W.u8 b 0;
          w_ints b cstar;
          (match aggregate with
          | None -> W.u8 b 0
          | Some agg ->
              W.u8 b 1;
              W.u32 b (Array.length agg);
              Array.iter (fun v -> W.i32 b v) agg)
      | Rv_aborted_quorum { stage; survivors; needed } ->
          W.u8 b 1;
          w_string b stage;
          W.u32 b survivors;
          W.u32 b needed
      | Rv_aborted_decode ids ->
          W.u8 b 2;
          w_ints b ids)
  | Reject { reason } ->
      W.u8 b 13;
      w_string b reason
  | Recover_req { round; dropout } ->
      W.u8 b 14;
      W.u32 b round;
      W.u32 b dropout
  | Recover_resp { round; dropout; share; mask } ->
      W.u8 b 15;
      W.u32 b round;
      W.u32 b dropout;
      (match share with
      | None -> W.u8 b 0
      | Some s ->
          W.u8 b 1;
          w_scalar b s);
      w_scalar b mask
  | Reject_stale { current_round; reason } ->
      W.u8 b 16;
      W.u32 b current_round;
      w_string b reason);
  Buffer.to_bytes b

let decode body =
  ( Serial.total "proto" @@ fun r ->
  let msg =
    match R.u8 r with
    | 1 ->
        let client_id = R.u32 r in
        let resume_round = R.u32 r in
        (* a 9-byte body is a valid legacy v0 hello *)
        let version = if R.remaining r > 0 then R.u32 r else 0 in
        (* v3 tail: epoch + rejoin flag; older peers stop before it *)
        let epoch = if R.remaining r > 0 then R.u32 r else 0 in
        let rejoin = if R.remaining r > 0 then R.u8 r <> 0 else false in
        Hello { client_id; resume_round; version; epoch; rejoin }
    | 2 -> Submit (R.bytes r)
    | 3 ->
        let dealer = R.u32 r in
        let shares =
          match R.u8 r with
          | 0 -> None
          | 1 ->
              let c = checked_count (R.u32 r) in
              Some
                (List.init c (fun _ ->
                     let recipient = R.u32 r in
                     let s = r_scalar r in
                     (recipient, s)))
          | _ -> failwith "bad option tag"
        in
        Reveal_resp { dealer; shares }
    | 4 -> Bye
    | 5 ->
        let n = R.u32 r in
        let round = R.u32 r in
        let version, degree =
          if R.remaining r > 0 then
            let v = R.u32 r in
            let d = R.u32 r in
            (v, d)
          else (0, 0)
        in
        let epoch = if R.remaining r > 0 then R.u32 r else 0 in
        Hello_ok { n; round; version; degree; epoch }
    | 6 ->
        let round = R.u32 r in
        let stage =
          match Netsim.stage_of_index (R.u8 r) with
          | Some s -> s
          | None -> failwith "bad stage"
        in
        let sender = R.u32 r in
        let seq = R.u32 r in
        Ack { round; stage; sender; seq }
    | 7 ->
        let round = R.u32 r in
        let c = checked_count (R.u32 r) in
        let commits = Array.init c (fun _ -> R.bytes r) in
        Commits { round; commits }
    | 8 ->
        let round = R.u32 r in
        let c = checked_count (R.u32 r) in
        let shares =
          List.init c (fun _ ->
              let flagger = R.u32 r in
              let dealer = R.u32 r in
              let s = r_scalar r in
              (flagger, dealer, s))
        in
        Cleared { round; shares }
    | 9 ->
        let round = R.u32 r in
        let bcast = R.bytes r in
        Check { round; bcast }
    | 10 ->
        let round = R.u32 r in
        let honest = r_ints r in
        let malicious = r_ints r in
        Honest { round; honest; malicious }
    | 11 ->
        let dealer = R.u32 r in
        let requests = r_ints r in
        Reveal_req { dealer; requests }
    | 12 -> (
        let round = R.u32 r in
        match R.u8 r with
        | 0 ->
            let cstar = r_ints r in
            let aggregate =
              match R.u8 r with
              | 0 -> None
              | 1 ->
                  let c = checked_count (R.u32 r) in
                  Some (Array.init c (fun _ -> R.i32 r))
              | _ -> failwith "bad option tag"
            in
            Result { round; view = Rv_completed { cstar; aggregate } }
        | 1 ->
            let stage = r_string r in
            let survivors = R.u32 r in
            let needed = R.u32 r in
            Result { round; view = Rv_aborted_quorum { stage; survivors; needed } }
        | 2 -> Result { round; view = Rv_aborted_decode (r_ints r) }
        | _ -> failwith "bad result tag")
    | 13 -> Reject { reason = r_string r }
    | 14 ->
        let round = R.u32 r in
        let dropout = R.u32 r in
        Recover_req { round; dropout }
    | 15 ->
        let round = R.u32 r in
        let dropout = R.u32 r in
        let share =
          match R.u8 r with
          | 0 -> None
          | 1 -> Some (r_scalar r)
          | _ -> failwith "bad option tag"
        in
        let mask = r_scalar r in
        Recover_resp { round; dropout; share; mask }
    | 16 ->
        let current_round = R.u32 r in
        let reason = r_string r in
        Reject_stale { current_round; reason }
    | _ -> failwith "unknown tag"
  in
  R.finish r;
  msg )
    body
