(** Length-prefixed framing for the socket transport.

    A wire frame is a little-endian u32 byte count followed by that many
    body bytes. The {!Reassembler} turns an arbitrary sequence of chunks
    (partial reads, byte-at-a-time slow-loris writes, several frames
    coalesced into one read) back into complete bodies.

    Totality/allocation invariant (the socket-path mirror of the
    fuzz-wire guarantee): a length prefix is validated against the
    reassembler's cap {e before} any body buffer is allocated — a hostile
    0xFFFFFFFF count costs four header bytes of state and an [Error],
    never a large allocation. After an [Error] the reassembler is dead:
    every further [feed] returns the same error (the connection must be
    closed). *)

val default_max_frame : int
(** 16 MiB — larger than any legitimate protocol message at the scales
    this repo runs, small enough that a hostile prefix cannot balloon the
    server. *)

val encode : Bytes.t -> Bytes.t
(** [encode body] — the wire frame: 4-byte LE length prefix ++ body. *)

module Reassembler : sig
  type t

  val create : ?max_frame:int -> unit -> t

  val feed : t -> Bytes.t -> off:int -> len:int -> (Bytes.t list, string) result
  (** [feed t chunk ~off ~len] — absorb [len] bytes of [chunk] starting
      at [off]; returns the frame bodies completed by this chunk, in wire
      order (possibly several, possibly none). [Error] means a protocol
      violation (oversized length prefix): no allocation happened and the
      reassembler is poisoned. *)

  val pending : t -> int
  (** Bytes buffered towards an incomplete frame (0 between frames). *)
end
