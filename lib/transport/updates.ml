module Driver = Risefl_core.Driver

let make ~n ~d ~bound ~seed ~attackers ~round =
  let label =
    if round = 1 then seed ^ "/updates" else Printf.sprintf "%s/updates/r%d" seed round
  in
  let drbg = Prng.Drbg.create_string label in
  let updates =
    Array.init n (fun _ -> Array.init d (fun _ -> Prng.Drbg.uniform_int drbg 60 - 30))
  in
  List.iter
    (fun i ->
      if i >= 1 && i <= n then begin
        let norm = Encoding.Fixed_point.l2_norm_encoded updates.(i - 1) in
        let factor = int_of_float (50.0 *. bound /. norm) in
        updates.(i - 1) <- Array.map (fun x -> factor * x) updates.(i - 1)
      end)
    attackers;
  updates

let behaviours ~n ~attackers =
  let behaviours = Driver.honest_all n in
  List.iter
    (fun i -> if i >= 1 && i <= n then behaviours.(i - 1) <- Driver.Oversized 50.0)
    attackers;
  behaviours
