(* transport.* telemetry: registered once per name, shared with the other
   transport modules (Counter.make is idempotent), and therefore visible
   in every --trace snapshot that crosses the socket path *)
let c_accepts = Telemetry.Counter.make "transport.accepts"
let c_disconnects = Telemetry.Counter.make "transport.disconnects"
let c_violations = Telemetry.Counter.make "transport.violations"
let c_bytes_in = Telemetry.Counter.make "transport.bytes.in"
let c_bytes_out = Telemetry.Counter.make "transport.bytes.out"
let c_frames_in = Telemetry.Counter.make "transport.frames.in"
let c_frames_out = Telemetry.Counter.make "transport.frames.out"
let c_overflows = Telemetry.Counter.make "transport.outbuf.overflows"

type addr = Tcp of string * int | Unix_sock of string

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> Error "expected tcp:HOST:PORT or unix:PATH"
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" -> if rest = "" then Error "empty unix path" else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error "tcp needs HOST:PORT"
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 ->
                  Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
              | _ -> Error ("bad port: " ^ port)))
      | _ -> Error ("unknown scheme: " ^ scheme))

let addr_to_string = function
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p
  | Unix_sock p -> "unix:" ^ p

let sockaddr_of_addr = function
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback)
      in
      Unix.ADDR_INET (ip, port)
  | Unix_sock path -> Unix.ADDR_UNIX path

type conn = {
  fd : Unix.file_descr;
  peer : string;
  reasm : Frame.Reassembler.t;
  mutable id : int option;
  (* queued wire bytes: head is partially written up to [out_off] *)
  out : Bytes.t Queue.t;
  mutable out_off : int;
  mutable out_bytes : int;
  mutable alive : bool;
}

let conn_id c = c.id
let set_conn_id c i = c.id <- Some i
let conn_peer c = c.peer
let conn_alive c = c.alive

type event =
  | Accepted of conn
  | Msg of conn * Proto.msg
  | Violation of conn * string
  | Closed of conn

type t = {
  listen_fd : Unix.file_descr;
  listen_addr : addr;
  max_frame : int;
  max_outbuf : int;
  mutable conns : conn list;
  queued : event Queue.t;  (* events produced during [drain] *)
  readbuf : Bytes.t;
}

let listen ?(max_frame = Frame.default_max_frame) ?(max_outbuf = 64 * 1024 * 1024) addr =
  (match addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let domain = match addr with Tcp _ -> Unix.PF_INET | Unix_sock _ -> Unix.PF_UNIX in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true | Unix_sock _ -> ());
  Unix.bind fd (sockaddr_of_addr addr);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  {
    listen_fd = fd;
    listen_addr = addr;
    max_frame;
    max_outbuf;
    conns = [];
    queued = Queue.create ();
    readbuf = Bytes.create 65536;
  }

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    Telemetry.Counter.incr c_disconnects;
    close_fd conn.fd;
    t.conns <- List.filter (fun c -> c != conn) t.conns
  end

let string_of_sockaddr = function
  | Unix.ADDR_UNIX p -> "unix:" ^ p
  | Unix.ADDR_INET (ip, port) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port

(* write as much of [conn]'s outbuffer as the socket accepts *)
let flush_conn t conn =
  let closed = ref false in
  (try
     while conn.alive && not (Queue.is_empty conn.out) do
       let head = Queue.peek conn.out in
       let len = Bytes.length head - conn.out_off in
       let n = Unix.write conn.fd head conn.out_off len in
       Telemetry.Counter.add c_bytes_out n;
       conn.out_bytes <- conn.out_bytes - n;
       if n = len then begin
         ignore (Queue.pop conn.out);
         conn.out_off <- 0
       end
       else conn.out_off <- conn.out_off + n
     done
   with
  | Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ -> closed := true);
  if !closed then begin
    close_conn t conn;
    true
  end
  else false

let send t conn msg =
  if conn.alive then begin
    let wire = Frame.encode (Proto.encode msg) in
    Queue.push wire conn.out;
    conn.out_bytes <- conn.out_bytes + Bytes.length wire;
    Telemetry.Counter.incr c_frames_out;
    ignore (flush_conn t conn);
    (* backpressure: a peer that stopped reading does not get to grow our
       heap without bound — past the cap it is disconnected *)
    if conn.out_bytes > t.max_outbuf then begin
      Telemetry.Counter.incr c_overflows;
      close_conn t conn
    end
  end

let broadcast t msg =
  List.iter (fun c -> if c.id <> None then send t c msg) t.conns

let conn_of_id t i =
  List.find_opt (fun c -> c.alive && c.id = Some i) t.conns

(* read whatever is available on [conn]; decode completed frames *)
let read_conn t conn events =
  let closed = ref false in
  let eof = ref false in
  (try
     let continue = ref true in
     while !continue && conn.alive do
       let n = Unix.read conn.fd t.readbuf 0 (Bytes.length t.readbuf) in
       if n = 0 then begin
         eof := true;
         continue := false
       end
       else begin
         Telemetry.Counter.add c_bytes_in n;
         match Frame.Reassembler.feed conn.reasm t.readbuf ~off:0 ~len:n with
         | Error e ->
             Telemetry.Counter.incr c_violations;
             events := Violation (conn, e) :: !events;
             close_conn t conn;
             continue := false
         | Ok bodies ->
             List.iter
               (fun body ->
                 if conn.alive then begin
                   Telemetry.Counter.incr c_frames_in;
                   match Proto.decode body with
                   | Ok msg -> events := Msg (conn, msg) :: !events
                   | Error e ->
                       Telemetry.Counter.incr c_violations;
                       events :=
                         Violation
                           (conn, "bad envelope: " ^ Risefl_core.Serial.error_to_string e)
                         :: !events;
                       close_conn t conn
                 end)
               bodies;
         if n < Bytes.length t.readbuf then continue := false
       end
     done
   with
  | Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ -> closed := true);
  if (!closed || !eof) && conn.alive then begin
    close_conn t conn;
    events := Closed conn :: !events
  end

let accept_ready t events =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, peer ->
        Unix.set_nonblock fd;
        let conn =
          {
            fd;
            peer = string_of_sockaddr peer;
            reasm = Frame.Reassembler.create ~max_frame:t.max_frame ();
            id = None;
            out = Queue.create ();
            out_off = 0;
            out_bytes = 0;
            alive = true;
          }
        in
        Telemetry.Counter.incr c_accepts;
        t.conns <- conn :: t.conns;
        events := Accepted conn :: !events
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
        continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let poll t ~timeout_s =
  let events = ref [] in
  (* events deferred from a drain window surface first *)
  while not (Queue.is_empty t.queued) do
    events := Queue.pop t.queued :: !events
  done;
  let rds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
  let wrs =
    List.filter_map
      (fun c -> if Queue.is_empty c.out then None else Some c.fd)
      t.conns
  in
  let timeout = if !events <> [] then 0.0 else max 0.0 timeout_s in
  (match Unix.select rds wrs [] timeout with
  | readable, writable, _ ->
      if List.memq t.listen_fd readable then accept_ready t events;
      List.iter
        (fun conn -> if conn.alive && List.memq conn.fd writable then ignore (flush_conn t conn))
        t.conns;
      List.iter
        (fun conn -> if conn.alive && List.memq conn.fd readable then read_conn t conn events)
        (List.filter (fun c -> c.fd != t.listen_fd) t.conns)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  List.rev !events

let drain t ~deadline_s =
  let busy () = List.exists (fun c -> c.alive && not (Queue.is_empty c.out)) t.conns in
  while busy () && Telemetry.Clock.now_s () < deadline_s do
    List.iter (fun ev -> Queue.push ev t.queued) (poll t ~timeout_s:0.02)
  done

let shutdown t =
  List.iter (fun c -> close_conn t c) t.conns;
  close_fd t.listen_fd;
  match t.listen_addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
