module Client_sm = Risefl_core.Client
module Driver = Risefl_core.Driver
module Membership = Risefl_core.Membership
module Serial = Risefl_core.Serial
module Setup = Risefl_core.Setup
module Params = Risefl_core.Params
module Topology = Risefl_topology.Topology
module Clock = Telemetry.Clock

let c_retransmits = Telemetry.Counter.make "transport.retransmits"
let c_reconnects = Telemetry.Counter.make "transport.reconnects"
let c_timeouts = Telemetry.Counter.make "transport.timeouts"
let c_bytes_out = Telemetry.Counter.make "transport.bytes.out"
let c_bytes_in = Telemetry.Counter.make "transport.bytes.in"

type config = {
  addr : Evloop.addr;
  setup : Setup.t;
  seed : string;
  id : int;
  rounds : int;
  d : int;
  bound : float;
  attackers : int list;
  deadline_s : float;
  loris : bool;
  die_at : (int * Netsim.stage) option;
  max_connect_attempts : int;
  topology : Topology.mode;
  churn : Membership.spec option;
      (* elastic membership: derive each round's cohort and epoch locally
         from the seeded churn schedule — must match the server's spec *)
  rejoin : bool;
      (* re-enroll into a session already in flight: learn the current
         round from the server, fast-forward the local epochs, skip the
         rounds this process missed *)
}

type st = {
  cfg : config;
  client : Client_sm.t;
  session : Driver.session;
  (* the memoized elastic-cohort hook (None = static membership): every
     epoch is derived locally — the schedule is a pure function of the
     session seed, so no membership bytes ever cross the wire *)
  cohort_for : (int -> Membership.epoch option) option;
  mutable epoch_applied : int;  (* last epoch applied to the session *)
  mutable skip_until : int;  (* first round this process participates in *)
  mutable resync : int option;  (* set by Reject_stale: fast-forward here *)
  mutable server_round : int option;  (* from the last Hello_ok *)
  n : int;
  log : string -> unit;
  backoff : Prng.Drbg.t;
  mutable fd : Unix.file_descr option;
  mutable reasm : Frame.Reassembler.t;
  mutable cur_round : int;
  mutable pending : Bytes.t option;  (* unacked submit, resent on reconnect *)
  acked : (int * int, unit) Hashtbl.t;  (* (round, stage index) *)
  commits : (int, Bytes.t array) Hashtbl.t;
  checks : (int, Bytes.t) Hashtbl.t;
  honests : (int, int list * int list) Hashtbl.t;
  results : (int, Proto.result_view) Hashtbl.t;
  cleared_done : (int, unit) Hashtbl.t;  (* rounds whose Cleared was applied *)
  (* reveal responses are cached by request list: a re-request after a
     server restart must answer identically without re-deriving *)
  reveals : (int list, (int * Curve25519.Scalar.t) list option) Hashtbl.t;
  outbox : (int * int, Bytes.t) Hashtbl.t;  (* cached framed submit bytes *)
  (* the share topology in force — the server's Hello_ok announcement
     wins over the locally configured mode, so a client started with the
     wrong flag still derives the graph the cohort agreed on *)
  mutable topo_mode : Topology.mode;
  (* recovery answers cached by (round, dropout): a re-request after a
     server restart must answer identically *)
  recoveries : (int * int, (Curve25519.Scalar.t option * Curve25519.Scalar.t) option) Hashtbl.t;
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let disconnect st =
  match st.fd with
  | Some fd ->
      close_quietly fd;
      st.fd <- None
  | None -> ()

let write_all st fd wire =
  let len = Bytes.length wire in
  let pos = ref 0 in
  while !pos < len do
    let chunk = if st.cfg.loris then 1 else len - !pos in
    let n = Unix.write fd wire !pos chunk in
    Telemetry.Counter.add c_bytes_out n;
    pos := !pos + n;
    if st.cfg.loris then Unix.sleepf 0.0005
  done

(* send one envelope; a socket error here surfaces on the next pump *)
let send_msg st msg =
  match st.fd with
  | None -> ()
  | Some fd -> (
      try write_all st fd (Frame.encode (Proto.encode msg))
      with Unix.Unix_error _ -> disconnect st)

(* Apply the membership epochs up to [upto] to the local session: the
   hook materializes them in round order, [Driver.apply_epoch] rotates
   the keys and installs each directory. Idempotent per epoch. *)
let fast_forward st ~upto =
  match st.cohort_for with
  | None -> ()
  | Some f ->
      for r = st.epoch_applied + 1 to upto do
        match f r with Some ep -> Driver.apply_epoch st.session ep | None -> ()
      done;
      if upto > st.epoch_applied then st.epoch_applied <- upto

(* the round's frozen epoch, applied to the session as a side effect *)
let epoch_for st ~round =
  match st.cohort_for with
  | None -> None
  | Some f ->
      fast_forward st ~upto:(round - 1);
      let ep = f round in
      (match ep with Some ep -> Driver.apply_epoch st.session ep | None -> ());
      if round > st.epoch_applied then st.epoch_applied <- round;
      ep

let full_cohort st = Array.init st.n (fun i -> i + 1)

let cohort_of st ~round =
  match st.cohort_for with
  | None -> full_cohort st
  | Some f -> (
      match f round with Some ep -> ep.Membership.ep_cohort | None -> full_cohort st)

let rec connect st ~attempt =
  (* a stale-epoch rejection: fast-forward the locally derivable epochs
     to where the server says the session is, then re-enroll — under a
     jittered pause so a herd of stale clients doesn't stampede *)
  (match st.resync with
  | Some r ->
      st.resync <- None;
      let jitter = 0.02 +. (float_of_int (Prng.Drbg.uniform_int st.backoff 200) /. 2000.0) in
      Unix.sleepf jitter;
      fast_forward st ~upto:(r - 1);
      st.skip_until <- max st.skip_until r;
      st.cur_round <- max st.cur_round r
  | None -> ());
  if attempt > st.cfg.max_connect_attempts then
    failwith
      (Printf.sprintf "client %d: server unreachable after %d attempts" st.cfg.id
         st.cfg.max_connect_attempts);
  let sock () =
    let domain =
      match st.cfg.addr with Evloop.Tcp _ -> Unix.PF_INET | Evloop.Unix_sock _ -> Unix.PF_UNIX
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Evloop.sockaddr_of_addr st.cfg.addr);
      Some fd
    with Unix.Unix_error _ ->
      close_quietly fd;
      None
  in
  match sock () with
  | Some fd ->
      if attempt > 0 then Telemetry.Counter.incr c_reconnects;
      st.fd <- Some fd;
      st.reasm <- Frame.Reassembler.create ();
      send_msg st
        (Proto.Hello
           {
             client_id = st.cfg.id;
             resume_round = st.cur_round;
             version = Proto.proto_version;
             epoch = st.epoch_applied;
             rejoin = st.cfg.rejoin;
           });
      (* the write-ahead ack may have been lost with the old connection:
         retransmit the in-flight frame, the server re-acks or collects *)
      (match st.pending with
      | Some framed ->
          Telemetry.Counter.incr c_retransmits;
          send_msg st (Proto.Submit framed)
      | None -> ())
  | None ->
      (* jittered exponential backoff, deterministic in (seed, id) *)
      let base = 0.05 *. (2.0 ** float_of_int (min attempt 5)) in
      let jitter = 0.5 +. (float_of_int (Prng.Drbg.uniform_int st.backoff 1000) /. 1000.0) in
      Unix.sleepf (Float.min 2.0 (base *. jitter));
      connect st ~attempt:(attempt + 1)

let ensure_connected st = if st.fd = None then connect st ~attempt:0

(* the round's share graph under the adopted mode (None = all-to-all).
   [Driver.effective_topology] applies the same shrunken-cohort degree
   clamp the server applies, so both sides derive the identical graph. *)
let topo_for st ~round =
  let cohort = cohort_of st ~round in
  let mode = Driver.effective_topology st.cfg.setup ~cohort st.topo_mode in
  Topology.plan ~mode ~seed:st.cfg.seed ~round ~cohort

let recovery_answer st ~round ~dropout =
  match Hashtbl.find_opt st.recoveries (round, dropout) with
  | Some ans -> ans
  | None ->
      let ans =
        match topo_for st ~round with
        | None -> None (* all-to-all rounds have no neighborhood recovery *)
        | Some topo -> (
            match Client_sm.recovery_response st.client ~round ~topo ~dropout with
            | resp -> Some resp
            | exception Client_sm.Server_misbehaving reason ->
                st.log (Printf.sprintf "refusing recovery: %s" reason);
                None)
      in
      Hashtbl.replace st.recoveries (round, dropout) ans;
      ans

let reveal_response st ~requests =
  let key = List.sort_uniq compare requests in
  match Hashtbl.find_opt st.reveals key with
  | Some shares -> shares
  | None ->
      let shares =
        match Client_sm.reveal_shares st.client ~requests with
        | shares -> Some shares
        | exception Client_sm.Server_misbehaving reason ->
            st.log (Printf.sprintf "refusing reveal: %s" reason);
            None
      in
      Hashtbl.replace st.reveals key shares;
      shares

let dispatch st msg =
  match msg with
  | Proto.Hello_ok { version; degree; round; _ } ->
      st.server_round <- Some round;
      if version >= 2 then
        st.topo_mode <- (if degree > 0 then Topology.Kregular degree else Topology.Full)
  | Proto.Ack { round; stage; sender; seq = _ } ->
      if sender = st.cfg.id then begin
        Hashtbl.replace st.acked (round, Netsim.stage_index stage) ();
        st.pending <- None
      end
  | Proto.Commits { round; commits } ->
      if not (Hashtbl.mem st.commits round) then Hashtbl.replace st.commits round commits
  | Proto.Cleared { round; shares } ->
      (* set-once: a replay after reconnect must not double-apply *)
      if not (Hashtbl.mem st.cleared_done round) then begin
        Hashtbl.replace st.cleared_done round ();
        List.iter
          (fun (flagger, dealer, value) ->
            if flagger = st.cfg.id then
              Client_sm.accept_cleared_share st.client ~from:dealer ~value)
          shares
      end
  | Proto.Check { round; bcast } ->
      if not (Hashtbl.mem st.checks round) then Hashtbl.replace st.checks round bcast
  | Proto.Honest { round; honest; malicious } ->
      if not (Hashtbl.mem st.honests round) then
        Hashtbl.replace st.honests round (honest, malicious)
  | Proto.Result { round; view } ->
      if not (Hashtbl.mem st.results round) then Hashtbl.replace st.results round view
  | Proto.Reveal_req { dealer; requests } ->
      if dealer = st.cfg.id then
        send_msg st (Proto.Reveal_resp { dealer; shares = reveal_response st ~requests })
  | Proto.Recover_req { round; dropout } -> (
      match recovery_answer st ~round ~dropout with
      | Some (share, mask) -> send_msg st (Proto.Recover_resp { round; dropout; share; mask })
      | None -> ())
  | Proto.Reject_stale { current_round; reason } ->
      st.log (Printf.sprintf "stale membership epoch: %s" reason);
      st.resync <- Some current_round;
      disconnect st
  | Proto.Reject { reason } -> failwith (Printf.sprintf "client %d rejected: %s" st.cfg.id reason)
  | Proto.Hello _ | Proto.Submit _ | Proto.Reveal_resp _ | Proto.Recover_resp _ | Proto.Bye ->
      (* client-to-server traffic echoed back: ignore *)
      ()

(* one read round: select with a timeout, feed the reassembler, dispatch *)
let pump st ~until_s =
  ensure_connected st;
  match st.fd with
  | None -> ()
  | Some fd -> (
      let timeout = Float.max 0.0 (Float.min 0.1 (until_s -. Clock.now_s ())) in
      match Unix.select [ fd ] [] [] timeout with
      | [], _, _ -> ()
      | _ -> (
          let buf = Bytes.create 65536 in
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 ->
              disconnect st;
              connect st ~attempt:0
          | n -> (
              Telemetry.Counter.add c_bytes_in n;
              match Frame.Reassembler.feed st.reasm buf ~off:0 ~len:n with
              | Error e ->
                  (* the server never sends malformed frames: treat as a
                     broken connection and start clean *)
                  st.log (Printf.sprintf "reassembly error (%s); reconnecting" e);
                  disconnect st;
                  connect st ~attempt:0
              | Ok bodies ->
                  List.iter
                    (fun body ->
                      match Proto.decode body with
                      | Ok msg -> dispatch st msg
                      | Error _ -> st.log "undecodable envelope from server; dropped")
                    bodies)
          | exception Unix.Unix_error _ ->
              disconnect st;
              connect st ~attempt:0)
      | exception Unix.Unix_error _ -> ())

(* wait until [pred] holds; a Result for the round (the server resolved
   it without us) or the deadline degrade to the quorum path *)
let wait st ~round pred =
  let deadline = Clock.now_s () +. st.cfg.deadline_s in
  let rec go () =
    if pred () then `Got
    else if Hashtbl.mem st.results round then `Resolved
    else if Clock.now_s () >= deadline then begin
      Telemetry.Counter.incr c_timeouts;
      `Timeout
    end
    else begin
      pump st ~until_s:deadline;
      go ()
    end
  in
  go ()

let framed_of st ~round ~stage payload =
  let stage_ix = Netsim.stage_index stage in
  match Hashtbl.find_opt st.outbox (round, stage_ix) with
  | Some framed -> framed
  | None ->
      let framed =
        Serial.encode_framed ~round ~stage:stage_ix ~sender:st.cfg.id ~seq:0 payload
      in
      Hashtbl.replace st.outbox (round, stage_ix) framed;
      framed

(* submit-until-acked under exponential backoff (quorum path on deadline) *)
let submit st ~round ~stage payload =
  (match st.cfg.die_at with
  | Some (r, s) when r = round && s = stage ->
      st.log
        (Printf.sprintf "dying before %s of round %d" (Netsim.stage_to_string stage) round);
      disconnect st;
      exit 0
  | _ -> ());
  let stage_ix = Netsim.stage_index stage in
  let framed = framed_of st ~round ~stage payload in
  st.pending <- Some framed;
  let deadline = Clock.now_s () +. st.cfg.deadline_s in
  let window = ref 0.25 in
  let attempt = ref 0 in
  let acked () = Hashtbl.mem st.acked (round, stage_ix) in
  while (not (acked ())) && (not (Hashtbl.mem st.results round)) && Clock.now_s () < deadline do
    ensure_connected st;
    if !attempt > 0 then Telemetry.Counter.incr c_retransmits;
    incr attempt;
    send_msg st (Proto.Submit framed);
    let wdl = Float.min deadline (Clock.now_s () +. !window) in
    while (not (acked ())) && (not (Hashtbl.mem st.results round)) && Clock.now_s () < wdl do
      pump st ~until_s:wdl
    done;
    window := Float.min 4.0 (!window *. 2.0)
  done;
  if not (acked ()) then Telemetry.Counter.incr c_timeouts;
  st.pending <- None

let run_round st ~round =
  let cfg = st.cfg in
  (* a round this process missed (rejoin/resync): the session already
     resolved it, nothing to do *)
  if round < st.skip_until then None
  else begin
  (* freeze the round's membership first: the epoch rotates keys and
     installs the directory before any frame is built *)
  let ep = epoch_for st ~round in
  let cohort = match ep with Some ep -> ep.Membership.ep_cohort | None -> full_cohort st in
  if not (Array.exists (fun id -> id = cfg.id) cohort) then begin
    st.log (Printf.sprintf "round %d: outside this round's cohort; sitting out" round);
    None
  end
  else begin
  st.cur_round <- round;
  let cohort_opt = if Array.length cohort = st.n then None else Some cohort in
  let updates =
    Updates.make ~n:st.n ~d:cfg.d ~bound:cfg.bound ~seed:cfg.seed ~attackers:cfg.attackers
      ~round
  in
  let update = updates.(cfg.id - 1) in
  let attacker = List.mem cfg.id cfg.attackers in
  let topo = topo_for st ~round in
  (* --- commit --- *)
  let commit =
    if attacker then
      Client_sm.commit_round_unchecked ?topo ?cohort:cohort_opt st.client ~round ~update
    else Client_sm.commit_round ?topo ?cohort:cohort_opt st.client ~round ~update
  in
  submit st ~round ~stage:Netsim.Commit (Serial.encode_commit_msg commit);
  (* --- flags (needs the server's validated commit set) --- *)
  (match wait st ~round (fun () -> Hashtbl.mem st.commits round) with
  | `Got ->
      let msgs =
        Array.map Serial.decode_commit_msg (Hashtbl.find st.commits round)
      in
      let flag = Client_sm.receive_shares ?topo ?cohort:cohort_opt st.client ~round ~msgs in
      submit st ~round ~stage:Netsim.Flag (Serial.encode_flag_msg flag)
  | `Resolved | `Timeout -> ());
  (* --- probabilistic check + proof --- *)
  (match wait st ~round (fun () -> Hashtbl.mem st.checks round) with
  | `Got -> (
      let s, hs =
        match Serial.decode_broadcast_r (Hashtbl.find st.checks round) with
        | Ok v -> v
        | Error e ->
            failwith ("client: check broadcast undecodable: " ^ Serial.error_to_string e)
      in
      let hs_tables = Parallel.parallel_map Curve25519.Point.Table.make hs in
      match Client_sm.try_proof_round ~hs_tables ?cohort:cohort_opt st.client ~round ~s ~hs with
      | Some proof -> submit st ~round ~stage:Netsim.Proof (Serial.encode_proof_msg proof)
      | None ->
          (* the rational-adversary move: the sampled projections would
             betray the update, stay silent *)
          st.log (Printf.sprintf "round %d: staying silent at proof stage" round))
  | `Resolved | `Timeout -> ());
  (* --- aggregation --- *)
  (match wait st ~round (fun () -> Hashtbl.mem st.honests round) with
  | `Got -> (
      let honest, malicious = Hashtbl.find st.honests round in
      if not (List.mem cfg.id malicious) then
        let agg () =
          match topo with
          | None -> Client_sm.agg_round st.client ~honest
          | Some topo -> Client_sm.agg_round_masked st.client ~round ~topo ~honest
        in
        match agg () with
        | msg -> submit st ~round ~stage:Netsim.Agg (Serial.encode_agg_msg msg)
        | exception Invalid_argument _ -> ())
  | `Resolved | `Timeout -> ());
  (* --- result --- *)
  match wait st ~round (fun () -> Hashtbl.mem st.results round) with
  | `Got | `Resolved -> Hashtbl.find_opt st.results round
  | `Timeout ->
      st.log (Printf.sprintf "round %d: no result before deadline" round);
      None
  end
  end

let run ?(log = fun _ -> ()) cfg =
  (* a dying server mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let n = cfg.setup.Setup.params.Params.n_clients in
  if cfg.id < 1 || cfg.id > n then invalid_arg "Client.run: id out of range";
  (* the same session as the server and every sibling: only our own
     client's DRBG fork ever advances in this process *)
  let session = Driver.create_session cfg.setup ~seed:cfg.seed in
  let cohort_for =
    Option.map (fun spec -> Driver.churn_cohort_for session ~spec ~rounds:cfg.rounds) cfg.churn
  in
  let st =
    {
      cfg;
      client = (Driver.session_clients session).(cfg.id - 1);
      session;
      cohort_for;
      epoch_applied = 0;
      skip_until = 1;
      resync = None;
      server_round = None;
      n;
      log;
      backoff = Prng.Drbg.create_string (Printf.sprintf "%s/backoff/%d" cfg.seed cfg.id);
      fd = None;
      reasm = Frame.Reassembler.create ();
      cur_round = 1;
      pending = None;
      acked = Hashtbl.create 16;
      commits = Hashtbl.create 4;
      checks = Hashtbl.create 4;
      honests = Hashtbl.create 4;
      results = Hashtbl.create 4;
      cleared_done = Hashtbl.create 4;
      reveals = Hashtbl.create 4;
      outbox = Hashtbl.create 16;
      topo_mode = cfg.topology;
      recoveries = Hashtbl.create 4;
    }
  in
  connect st ~attempt:0;
  (* rejoin bootstrap: learn where the session is before doing any round
     work. Either Hello_ok answers directly, or a stale-epoch rejection
     routes through the resync path (reconnect fast-forwards and
     re-enrolls) until one Hello is accepted. *)
  if cfg.rejoin then begin
    let deadline = Clock.now_s () +. cfg.deadline_s in
    while st.server_round = None && Clock.now_s () < deadline do
      pump st ~until_s:deadline
    done;
    match st.server_round with
    | Some r when r > 1 ->
        log (Printf.sprintf "re-enrolled: session is at round %d" r);
        fast_forward st ~upto:(r - 1);
        st.skip_until <- max st.skip_until r;
        st.cur_round <- max st.cur_round r
    | Some _ -> ()
    | None -> failwith (Printf.sprintf "client %d: rejoin handshake timed out" cfg.id)
  end;
  let results = ref [] in
  for round = 1 to cfg.rounds do
    match run_round st ~round with
    | Some view -> results := (round, view) :: !results
    | None -> ()
  done;
  send_msg st Proto.Bye;
  disconnect st;
  List.rev !results
