(** The deployment server: drives {!Risefl_core.Driver}'s round lifecycle
    over real sockets via the driver's [?remote] seam, with the
    write-ahead log as the source of truth.

    One {!serve} call runs the configured rounds against whatever clients
    connect. Per stage the server collects frames under a wall-clock
    deadline ({!Telemetry.Clock} is the timing authority) and then lets
    the quorum lifecycle decide; write-ahead ack discipline: a Submit is
    acknowledged only after the driver has appended it to the WAL, so an
    acked frame is never lost to a crash. A framing/envelope violation
    convicts the sender into C* (a synthetic undecodable frame walks the
    driver's normal conviction path) and closes the connection.

    Crash/restart: with a crash plan armed the server fsyncs the log and
    SIGKILLs its own process at the planned point — genuine kill -9
    semantics. A new [serve] on the same WAL replays the log, re-applies
    session bans, rebuilds the (round, stage, sender, seq) ack table
    (retransmits of already-logged frames re-ack instead of reprocessing)
    and finishes the interrupted round via {!Driver.recover_round} —
    bit-identical to an uncrashed run on the same seed. *)

module Driver = Risefl_core.Driver

type config = {
  addr : Evloop.addr;
  setup : Risefl_core.Setup.t;
  seed : string;  (** the session seed — clients must use the same *)
  rounds : int;
  stage_deadline_s : float;  (** per-stage collection deadline *)
  wal_path : string option;
  crash : (int * Netsim.stage * Driver.crash_point) option;
      (** die (SIGKILL) at this point; requires [wal_path] *)
  stream : Risefl_core.Server.stream_cfg option;
      (** verify proofs through the streaming pipeline (arrival-ordered
          folding + eviction) instead of the post-barrier batch; recovery
          replays logged proof frames through the same intake *)
  topology : Risefl_topology.Topology.mode;
      (** the session's share topology. Under [Kregular k] the server
          requires {!Proto.proto_version} from every client (old clients
          get a clean [Reject]), announces the degree in [Hello_ok], and
          recovers agg-stage dropouts through the [Recover_req]/
          [Recover_resp] neighborhood sub-exchange. *)
  churn : Risefl_core.Membership.spec option;
      (** elastic membership: derive each round's cohort from the seeded
          churn schedule ({!Driver.churn_cohort_for} over the session
          seed), collect frames only from the round's cohort, require
          {!Proto.proto_version} from every client, and answer a
          stale-epoch [Hello] with the typed [Reject_stale]. [None] runs
          the static full-universe membership. *)
}

type report = {
  outcomes : (int * Driver.round_outcome) list;  (** rounds run by this process *)
  resumed_round : int option;  (** the WAL round this process recovered *)
  banned : int list;
  stream_stats : Risefl_core.Server.stream_stats option;
      (** fold/evict/flush counters from the last streamed round, if any *)
  cohort_sizes : (int * int) list;
      (** per elastic round, the active cohort size this process ran
          under (empty when churn is off) *)
}

val serve : ?log:(string -> unit) -> config -> report
(** Runs to completion (never returns on a planned crash — the process is
    killed). [log] receives progress lines (default: dropped). *)
