(** The deployment client: one process driving one {!Risefl_core.Client}
    state machine against a {!Server} over a socket.

    Bit-identity with the in-process run comes from construction: the
    process builds the {e same} {!Risefl_core.Driver.session} from the
    shared seed (the per-client DRBGs are independent forks, so the
    untouched siblings never advance) and derives its per-round update
    with {!Updates.make} — every scalar it draws matches what the
    in-process twin would have drawn.

    Robustness: connect (and reconnect after any socket error) retries
    under jittered exponential backoff; every stage submit retransmits
    until the server's write-ahead ack arrives; per-wait deadlines
    degrade to the quorum path (the round's [Result] is accepted in place
    of a missed broadcast, and a fully silent server ends the round
    locally instead of hanging). Framed submit bytes are cached per
    (round, stage) so a reconnect retransmits the identical frame instead
    of recomputing. *)

type config = {
  addr : Evloop.addr;
  setup : Risefl_core.Setup.t;
  seed : string;  (** must equal the server's session seed *)
  id : int;  (** this client's id, 1-based *)
  rounds : int;
  d : int;
  bound : float;
  attackers : int list;  (** the run's global attacker set (shared knowledge) *)
  deadline_s : float;  (** per-wait deadline before degrading *)
  loris : bool;  (** write submits one byte at a time (testing) *)
  die_at : (int * Netsim.stage) option;
      (** exit the process just before submitting this stage (testing) *)
  max_connect_attempts : int;
  topology : Risefl_topology.Topology.mode;
      (** locally configured share topology; the server's [Hello_ok]
          announcement (version >= 2) overrides it, so the cohort always
          derives one graph. Under a k-regular round the client commits
          wire-v2 (neighbor shares + digest), masks its agg sum pairwise,
          and answers [Recover_req] for its dropped-out neighbors. *)
  churn : Risefl_core.Membership.spec option;
      (** elastic membership: derive each round's cohort, key rotations
          and epoch locally from the seeded churn schedule — must equal
          the server's spec. Rounds whose cohort excludes this client are
          sat out; a stale-epoch [Reject_stale] fast-forwards the local
          epochs and re-enrolls under jittered backoff. *)
  rejoin : bool;
      (** enroll into a session already in flight: learn the current
          round from the server's [Hello_ok] (or the [Reject_stale]
          resync path), fast-forward the locally derivable epochs, and
          participate from the current round on — client standing (bans,
          honest status) carries over because the server's view of this
          id never left the session. *)
}

val run : ?log:(string -> unit) -> config -> (int * Proto.result_view) list
(** Participate in the configured rounds; returns the per-round results
    the server announced (a round missing from the list timed out).
    @raise Failure if the server rejects us or stays unreachable past
    [max_connect_attempts]. *)
