let default_max_frame = 16 * 1024 * 1024

let encode body =
  let n = Bytes.length body in
  let out = Bytes.create (4 + n) in
  Bytes.set out 0 (Char.chr (n land 0xff));
  Bytes.set out 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set out 2 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set out 3 (Char.chr ((n lsr 24) land 0xff));
  Bytes.blit body 0 out 4 n;
  out

module Reassembler = struct
  type state =
    | Header  (** collecting the 4 length bytes into [hdr] *)
    | Body of Bytes.t * int  (** (buffer, filled) — buffer was cap-checked *)
    | Poisoned of string

  type t = {
    max_frame : int;
    hdr : Bytes.t;  (* 4-byte staging area for the length prefix *)
    mutable hdr_fill : int;
    mutable state : state;
  }

  let create ?(max_frame = default_max_frame) () =
    { max_frame; hdr = Bytes.create 4; hdr_fill = 0; state = Header }

  let pending t =
    match t.state with
    | Header -> t.hdr_fill
    | Body (_, filled) -> 4 + filled
    | Poisoned _ -> 0

  let feed t chunk ~off ~len =
    match t.state with
    | Poisoned e -> Error e
    | _ ->
        let out = ref [] in
        let pos = ref off in
        let stop = off + len in
        let err = ref None in
        while !err = None && !pos < stop do
          match t.state with
          | Poisoned e -> err := Some e
          | Header ->
              let want = 4 - t.hdr_fill in
              let take = min want (stop - !pos) in
              Bytes.blit chunk !pos t.hdr t.hdr_fill take;
              t.hdr_fill <- t.hdr_fill + take;
              pos := !pos + take;
              if t.hdr_fill = 4 then begin
                let b i = Char.code (Bytes.get t.hdr i) in
                let n = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
                t.hdr_fill <- 0;
                (* the cap check happens before the body allocation: a
                   hostile prefix never costs more than these 4 bytes *)
                if n < 0 || n > t.max_frame then begin
                  let e =
                    Printf.sprintf "frame length %d exceeds cap %d" n t.max_frame
                  in
                  t.state <- Poisoned e;
                  err := Some e
                end
                else if n = 0 then out := Bytes.create 0 :: !out
                else t.state <- Body (Bytes.create n, 0)
              end
          | Body (buf, filled) ->
              let want = Bytes.length buf - filled in
              let take = min want (stop - !pos) in
              Bytes.blit chunk !pos buf filled take;
              pos := !pos + take;
              if filled + take = Bytes.length buf then begin
                out := buf :: !out;
                t.state <- Header
              end
              else t.state <- Body (buf, filled + take)
        done;
        (match !err with Some e -> Error e | None -> Ok (List.rev !out))
end
