module Driver = Risefl_core.Driver
module Serial = Risefl_core.Serial
module Server_sm = Risefl_core.Server
module Round_log = Risefl_core.Round_log
module Setup = Risefl_core.Setup
module Params = Risefl_core.Params
module Topology = Risefl_topology.Topology
module Clock = Telemetry.Clock

let c_timeouts = Telemetry.Counter.make "transport.timeouts"
let c_retransmits = Telemetry.Counter.make "transport.retransmits"
let c_late = Telemetry.Counter.make "transport.late"
let c_spoofed = Telemetry.Counter.make "transport.spoofed"

type config = {
  addr : Evloop.addr;
  setup : Setup.t;
  seed : string;
  rounds : int;
  stage_deadline_s : float;
  wal_path : string option;
  crash : (int * Netsim.stage * Driver.crash_point) option;
  stream : Risefl_core.Server.stream_cfg option;
  topology : Topology.mode;
  churn : Risefl_core.Membership.spec option;
      (* elastic membership: derive each round's cohort from the seeded
         churn schedule (a pure function of the session seed) *)
}

type report = {
  outcomes : (int * Driver.round_outcome) list;
  resumed_round : int option;
  banned : int list;
  stream_stats : Risefl_core.Server.stream_stats option;
  cohort_sizes : (int * int) list;
}

(* Cleared shares are addressed: only the flagger that requested the
   reveal sees the plaintext share. Everything else is broadcast. *)
type target = All | One of int

type st = {
  loop : Evloop.t;
  n : int;
  session : Driver.session;
  deadline_s : float;
  log : string -> unit;
  (* (round, stage index, sender, seq) already in the WAL: a retransmit
     of any of these is re-acked without touching the driver *)
  acked : (int * int * int * int, unit) Hashtbl.t;
  (* broadcasts already emitted, oldest first, for Hello-time replay to
     a (re)connecting client *)
  mutable bcast_log : (int * target * Proto.msg) list;
  (* frames that arrived before their stage's collector started *)
  inbox : (int * int, (int * int * Bytes.t) Queue.t) Hashtbl.t;
  reveal_box : (int, (int * Curve25519.Scalar.t) list option) Hashtbl.t;
  (* (round, dropout, responder) -> the responder's recovery answer *)
  recover_box :
    (int * int * int, Curve25519.Scalar.t option * Curve25519.Scalar.t) Hashtbl.t;
  topo_mode : Topology.mode;
  churn_enabled : bool;
  (* the round's frozen membership epoch (None = static membership or
     between rounds): gates the collector's expected-sender set *)
  mutable epoch_now : Risefl_core.Membership.epoch option;
  (* protocol violators awaiting conviction by the next collector *)
  mutable pending_convict : int list;
  mutable pos : int * int;  (* last (round, stage index) a collector ran *)
  mutable round_now : int;
}

(* an intentionally undecodable frame: pushing it through the driver's
   intake walks the sender down the normal conviction path into C* *)
let violation_frame = Bytes.of_string "!transport-violation"

let key_of hdr =
  (hdr.Serial.fh_round, hdr.Serial.fh_stage, hdr.Serial.fh_sender, hdr.Serial.fh_seq)

let ack_of hdr stage =
  Proto.Ack
    {
      round = hdr.Serial.fh_round;
      stage;
      sender = hdr.Serial.fh_sender;
      seq = hdr.Serial.fh_seq;
    }

let send_bcast st ~round target msg =
  st.bcast_log <- st.bcast_log @ [ (round, target, msg) ];
  match target with
  | All -> Evloop.broadcast st.loop msg
  | One id -> (
      match Evloop.conn_of_id st.loop id with
      | Some c -> Evloop.send st.loop c msg
      | None -> ())

let convict st id =
  if not (List.mem id st.pending_convict) then begin
    st.log (Printf.sprintf "convicting client %d for a transport violation" id);
    st.pending_convict <- st.pending_convict @ [ id ]
  end

let inbox_queue st key =
  match Hashtbl.find_opt st.inbox key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace st.inbox key q;
      q

let handle_submit st conn framed =
  match Serial.decode_framed framed with
  | Error _ ->
      (* CRC failure through a TCP stream is line noise, not protocol
         abuse: drop without ack, the client retransmits *)
      ()
  | Ok (hdr, payload) -> (
      match (Evloop.conn_id conn, Netsim.stage_of_index hdr.Serial.fh_stage) with
      | None, _ -> Evloop.close_conn st.loop conn
      | Some _, None ->
          (* an unknown stage index inside a CRC-clean frame: noise *)
          ()
      | Some id, _ when hdr.Serial.fh_sender <> id ->
          (* a registered client speaking with someone else's sender id *)
          Telemetry.Counter.incr c_spoofed;
          convict st id;
          Evloop.close_conn st.loop conn
      | Some _, Some stage ->
          let key = key_of hdr in
          if Hashtbl.mem st.acked key then begin
            Telemetry.Counter.incr c_retransmits;
            Evloop.send st.loop conn (ack_of hdr stage)
          end
          else begin
            let r, s, _, _ = key in
            if (r, s) <= st.pos then begin
              (* a stage the lifecycle already left behind (quorum moved
                 on): ack so the client stops retrying, count it late *)
              Telemetry.Counter.incr c_late;
              Evloop.send st.loop conn (ack_of hdr stage)
            end
            else
              (* the driver's intake takes the inner payload: the frame
                 header's job (routing, dedup key) is done here *)
              Queue.add
                (hdr.Serial.fh_sender, hdr.Serial.fh_seq, payload)
                (inbox_queue st (r, s))
          end)

let handle_event st = function
  | Evloop.Accepted _ -> ()
  | Evloop.Msg (conn, msg) -> (
      match msg with
      | Proto.Hello { client_id; resume_round; version; epoch; rejoin } ->
          if client_id < 1 || client_id > st.n then begin
            Evloop.send st.loop conn (Proto.Reject { reason = "unknown client id" });
            Evloop.close_conn st.loop conn
          end
          else if
            (st.topo_mode <> Topology.Full || st.churn_enabled)
            && version < Proto.proto_version
          then begin
            (* a k-regular session needs wire-v2 commits and the recovery
               sub-exchange; an elastic session additionally needs the v3
               epoch handshake. An old client cannot follow — turn it
               away cleanly instead of convicting it mid-round *)
            Evloop.send st.loop conn
              (Proto.Reject
                 {
                   reason =
                     Printf.sprintf
                       "protocol version %d too old: this session runs %s and needs version >= \
                        %d"
                       version
                       (if st.churn_enabled then "elastic membership"
                        else "a k-regular share topology")
                       Proto.proto_version;
                 });
            Evloop.close_conn st.loop conn
          end
          else if st.churn_enabled && version >= 3 && epoch < st.round_now - 1 then begin
            (* the client's membership view lags the session: the epochs
               are locally derivable (the churn schedule is a pure
               function of the session seed), so a typed rejection
               telling it where the session is suffices — no membership
               bytes cross the wire *)
            Evloop.send st.loop conn
              (Proto.Reject_stale
                 {
                   current_round = st.round_now;
                   reason =
                     Printf.sprintf
                       "membership epoch %d is stale: the session is at round %d — fast-forward \
                        and re-enroll"
                       epoch st.round_now;
                 });
            Evloop.close_conn st.loop conn
          end
          else begin
            (match Evloop.conn_of_id st.loop client_id with
            | Some old when old != conn -> Evloop.close_conn st.loop old
            | _ -> ());
            Evloop.set_conn_id conn client_id;
            if rejoin then
              st.log (Printf.sprintf "client %d re-enrolling from round %d" client_id resume_round);
            let degree = match st.topo_mode with Topology.Full -> 0 | Topology.Kregular k -> k in
            Evloop.send st.loop conn
              (Proto.Hello_ok
                 {
                   n = st.n;
                   round = st.round_now;
                   version = Proto.proto_version;
                   degree;
                   epoch = (if st.churn_enabled then st.round_now else 0);
                 });
            (* replay the broadcasts the client may have missed *)
            List.iter
              (fun (round, target, msg) ->
                if round >= resume_round then
                  match target with
                  | All -> Evloop.send st.loop conn msg
                  | One id when id = client_id -> Evloop.send st.loop conn msg
                  | One _ -> ())
              st.bcast_log
          end
      | Proto.Submit framed -> handle_submit st conn framed
      | Proto.Reveal_resp { dealer; shares } -> (
          match Evloop.conn_id conn with
          | Some id when id = dealer -> Hashtbl.replace st.reveal_box dealer shares
          | _ -> ())
      | Proto.Recover_resp { round; dropout; share; mask } -> (
          match Evloop.conn_id conn with
          | Some id -> Hashtbl.replace st.recover_box (round, dropout, id) (share, mask)
          | None -> ())
      | Proto.Bye -> Evloop.close_conn st.loop conn
      | _ ->
          (* server-to-client message types coming back at us *)
          (match Evloop.conn_id conn with Some id -> convict st id | None -> ());
          Evloop.close_conn st.loop conn)
  | Evloop.Violation (conn, reason) -> (
      match Evloop.conn_id conn with
      | Some id ->
          st.log (Printf.sprintf "client %d: %s" id reason);
          convict st id
      | None -> st.log (Printf.sprintf "%s: %s" (Evloop.conn_peer conn) reason))
  | Evloop.Closed _ -> ()

let pump st ~until_s =
  let timeout = Float.max 0.0 (Float.min 0.05 (until_s -. Clock.now_s ())) in
  List.iter (handle_event st) (Evloop.poll st.loop ~timeout_s:timeout)

(* the driver's per-stage intake: drain the inbox, convict violators,
   poll the loop for more — under the stage deadline *)
let collect st ~round ~stage ~already ~push =
  let stage_ix = Netsim.stage_index stage in
  st.round_now <- round;
  let banned = Server_sm.malicious (Driver.session_server st.session) in
  (* under an elastic epoch only the round's cohort owes frames: absent
     clients are neither awaited nor timed out *)
  let expected =
    match st.epoch_now with
    | Some ep when ep.Risefl_core.Membership.ep_round = round ->
        Array.to_list ep.Risefl_core.Membership.ep_cohort
    | _ -> List.init st.n (fun i -> i + 1)
  in
  let pending = Hashtbl.create 16 in
  List.iter
    (fun i ->
      if (not (List.mem i already)) && not (List.mem i banned) then
        Hashtbl.replace pending i ())
    expected;
  let deadline = Clock.now_s () +. st.deadline_s in
  let accept (sender, seq, framed) =
    (* write-ahead ack: push appends to the WAL (or raises, crashing the
       server) before we acknowledge anything *)
    push (sender, seq, framed);
    Hashtbl.replace st.acked (round, stage_ix, sender, seq) ();
    Hashtbl.remove pending sender;
    match Evloop.conn_of_id st.loop sender with
    | Some c ->
        Evloop.send st.loop c
          (Proto.Ack { round; stage; sender; seq })
    | None -> ()
  in
  let step () =
    (* violators first: their synthetic frame convicts them through the
       driver's normal undecodable-frame path *)
    List.iter
      (fun id ->
        if Hashtbl.mem pending id then begin
          push (id, 0, violation_frame);
          Hashtbl.remove pending id
        end)
      st.pending_convict;
    st.pending_convict <-
      List.filter (fun id -> Hashtbl.mem pending id) st.pending_convict;
    match Hashtbl.find_opt st.inbox (round, stage_ix) with
    | None -> ()
    | Some q ->
        while not (Queue.is_empty q) do
          let (sender, seq, _) as item = Queue.pop q in
          if Hashtbl.mem st.acked (round, stage_ix, sender, seq) then
            Telemetry.Counter.incr c_retransmits
          else accept item
        done
  in
  step ();
  while Hashtbl.length pending > 0 && Clock.now_s () < deadline do
    pump st ~until_s:deadline;
    step ()
  done;
  Hashtbl.remove st.inbox (round, stage_ix);
  let missing = Hashtbl.length pending in
  if missing > 0 then begin
    Telemetry.Counter.add c_timeouts missing;
    st.log
      (Printf.sprintf "round %d %s: deadline passed with %d client(s) silent" round
         (Netsim.stage_to_string stage) missing)
  end;
  st.pos <- (round, stage_ix)

let reveal st ~dealer ~requests =
  Hashtbl.remove st.reveal_box dealer;
  (match Evloop.conn_of_id st.loop dealer with
  | Some c -> Evloop.send st.loop c (Proto.Reveal_req { dealer; requests })
  | None -> ());
  let deadline = Clock.now_s () +. st.deadline_s in
  while (not (Hashtbl.mem st.reveal_box dealer)) && Clock.now_s () < deadline do
    pump st ~until_s:deadline
  done;
  match Hashtbl.find_opt st.reveal_box dealer with
  | Some shares -> shares
  | None ->
      Telemetry.Counter.incr c_timeouts;
      None

(* the k-regular recovery sub-exchange: ask each alive neighbor of
   [dropout] for its share of the dropout's blind and the pairwise mask,
   under the stage deadline — same pump discipline as [reveal] *)
let recover st ~round ~dropout ~responders =
  List.iter (fun id -> Hashtbl.remove st.recover_box (round, dropout, id)) responders;
  List.iter
    (fun id ->
      match Evloop.conn_of_id st.loop id with
      | Some c -> Evloop.send st.loop c (Proto.Recover_req { round; dropout })
      | None -> ())
    responders;
  let outstanding () =
    List.filter (fun id -> not (Hashtbl.mem st.recover_box (round, dropout, id))) responders
  in
  let deadline = Clock.now_s () +. st.deadline_s in
  while outstanding () <> [] && Clock.now_s () < deadline do
    pump st ~until_s:deadline
  done;
  (match outstanding () with
  | [] -> ()
  | silent ->
      Telemetry.Counter.add c_timeouts (List.length silent);
      st.log
        (Printf.sprintf "round %d: recovery of client %d: %d responder(s) silent" round dropout
           (List.length silent)));
  List.filter_map
    (fun id ->
      Option.map (fun r -> (id, r)) (Hashtbl.find_opt st.recover_box (round, dropout, id)))
    responders

let view_of_outcome = function
  | Driver.Completed stats ->
      Proto.Rv_completed { cstar = stats.Driver.flagged; aggregate = stats.Driver.aggregate }
  | Driver.Aborted_insufficient_quorum { stage; survivors; needed } ->
      Proto.Rv_aborted_quorum { stage; survivors; needed }
  | Driver.Aborted_decode ids -> Proto.Rv_aborted_decode ids

let remote_of st : Driver.remote =
  {
    Driver.r_collect = (fun ~round ~stage ~already ~push -> collect st ~round ~stage ~already ~push);
    r_commits =
      (fun ~round commits -> send_bcast st ~round All (Proto.Commits { round; commits }));
    r_cleared =
      (fun ~round shares ->
        (* group by flagger: each flagger sees only its own reveals *)
        let flaggers = List.sort_uniq compare (List.map (fun (f, _, _) -> f) shares) in
        List.iter
          (fun f ->
            let own = List.filter (fun (f', _, _) -> f' = f) shares in
            send_bcast st ~round (One f) (Proto.Cleared { round; shares = own }))
          flaggers);
    r_check = (fun ~round bcast -> send_bcast st ~round All (Proto.Check { round; bcast }));
    r_honest =
      (fun ~round ~honest ~malicious ->
        send_bcast st ~round All (Proto.Honest { round; honest; malicious }));
    r_result =
      (fun ~round outcome ->
        send_bcast st ~round All (Proto.Result { round; view = view_of_outcome outcome }));
    r_reveal = (fun ~dealer ~requests -> reveal st ~dealer ~requests);
    r_recover =
      (fun ~round ~dropout ~responders -> recover st ~round ~dropout ~responders);
  }

(* Planned crash: the WAL is already synced (the driver fsyncs before
   raising); push queued acks/broadcasts out briefly, print the resume
   hint, then deliver genuine kill -9 semantics to our own process. *)
let die_crashed st wal stage at =
  let wal_path = match wal with Some w -> Round_log.path w | None -> "?" in
  Evloop.drain st.loop ~deadline_s:(Clock.now_s () +. 0.5);
  Printf.printf "server crashed at %s (wal synced); finish the round with: serve --wal %s\n"
    (Driver.crash_to_string (stage, at))
    wal_path;
  flush stdout;
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  assert false

let serve ?(log = fun _ -> ()) cfg =
  (* a peer vanishing mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let n = cfg.setup.Setup.params.Params.n_clients in
  let session = Driver.create_session cfg.setup ~seed:cfg.seed in
  let loop = Evloop.listen cfg.addr in
  let st =
    {
      loop;
      n;
      session;
      deadline_s = cfg.stage_deadline_s;
      log;
      acked = Hashtbl.create 64;
      bcast_log = [];
      inbox = Hashtbl.create 8;
      reveal_box = Hashtbl.create 4;
      recover_box = Hashtbl.create 4;
      topo_mode = cfg.topology;
      churn_enabled = Option.is_some cfg.churn;
      epoch_now = None;
      pending_convict = [];
      pos = (0, -1);
      round_now = 1;
    }
  in
  (* the elastic cohort hook: memoized per round, so recovery of a
     crashed round re-asks and gets the identical epoch back *)
  let cohort_for =
    Option.map
      (fun spec -> Driver.churn_cohort_for session ~spec ~rounds:cfg.rounds)
      cfg.churn
  in
  (* WAL replay: the log decides where this process picks up *)
  let records, wal =
    match cfg.wal_path with
    | None -> ([], None)
    | Some path ->
        let records =
          if Sys.file_exists path then fst (Round_log.replay path) else []
        in
        (records, Some (Round_log.create path))
  in
  let sealed = Hashtbl.create 4 in
  let started = ref 0 in
  List.iter
    (function
      | Round_log.Frame { round; stage; sender; seq; _ } ->
          Hashtbl.replace st.acked (round, Netsim.stage_index stage, sender, seq) ()
      | Round_log.Round_start { round } -> started := max !started round
      | Round_log.Round_end { round; cstar; aggregate } ->
          Hashtbl.replace sealed round (cstar, aggregate)
      | _ -> ())
    records;
  (* completed rounds carry their C* forward as bans, like run_session *)
  let server = Driver.session_server session in
  for r = 1 to !started do
    match Hashtbl.find_opt sealed r with
    | Some (cstar, Some _) -> List.iter (Server_sm.ban server) cstar
    | _ -> ()
  done;
  let resumed_round =
    if !started > 0 && not (Hashtbl.mem sealed !started) then Some !started else None
  in
  let start_round =
    match resumed_round with Some r -> r | None -> !started + 1
  in
  (* remote rounds never compute client work: dummies gate nothing *)
  let updates = Array.make n [||] in
  let behaviours = Driver.honest_all n in
  let remote = remote_of st in
  let outcomes = ref [] in
  let sizes = ref [] in
  (try
     for round = start_round to cfg.rounds do
       st.round_now <- round;
       let epoch = match cohort_for with Some f -> f round | None -> None in
       st.epoch_now <- epoch;
       let waiting =
         match epoch with
         | Some ep -> Array.length ep.Risefl_core.Membership.ep_cohort
         | None -> n
       in
       if Option.is_some epoch then sizes := (round, waiting) :: !sizes;
       log (Printf.sprintf "round %d: waiting for %d client(s)" round waiting);
       let crash_here =
         match cfg.crash with
         | Some (r, stage, at) when r = round -> Some (stage, at)
         | _ -> None
       in
       let outcome =
         try
           if resumed_round = Some round then
             Driver.recover_round ~remote ?wal ?stream:cfg.stream ?epoch
               ~topology:cfg.topology session ~records ~updates ~behaviours ~round
           else
             Driver.run_round_outcome ~remote ?wal ?crash:crash_here ?stream:cfg.stream
               ?epoch ~topology:cfg.topology session ~updates ~behaviours ~round
         with Driver.Server_crashed { stage; at } -> die_crashed st wal stage at
       in
       outcomes := (round, outcome) :: !outcomes;
       (match outcome with
       | Driver.Completed stats when stats.Driver.aggregate <> None ->
           List.iter (Server_sm.ban server) stats.Driver.flagged
       | _ -> ())
     done
   with e ->
     Evloop.shutdown loop;
     (match wal with Some w -> Round_log.close w | None -> ());
     raise e);
  (* let the final Result broadcasts reach the clients before closing *)
  Evloop.drain loop ~deadline_s:(Clock.now_s () +. 1.0);
  Evloop.shutdown loop;
  (match wal with Some w -> Round_log.close w | None -> ());
  {
    outcomes = List.rev !outcomes;
    resumed_round;
    banned = Server_sm.banned server;
    stream_stats = Server_sm.stream_stats server;
    cohort_sizes = List.rev !sizes;
  }
